// Command benchjson turns `go test -bench` output into JSON and
// appends the Placement: Auto calibration the library would run on the
// same workload, so `make bench-json` leaves one machine-readable
// BENCH_placement.json trajectory point per commit: the measured
// parallel-vs-pipelined Mpps sweep next to the calibration scores that
// drive the Auto decision.
//
// The calibration sweep runs with pinned cost-model inputs (handoff
// cycles, topology) — recorded per entry under "inputs" — so decisions
// are reproducible across machines. With -baseline, the tool compares
// the new sweep against a previous JSON file and fails when Auto's
// decided placement changed for an entry whose inputs did not — the
// decision-diff smoke CI runs on every PR: a scoring change that flips
// a placement must show up as a reviewed BENCH_placement.json update,
// never silently.
//
// The same treatment covers the controller's other actuator: a
// "steering" section records the bucket migrations rss.PlanMoves
// decides for pinned synthetic load shapes (flat, and eight elephant
// buckets on one chain), and the baseline diff fails when those moves
// change for an unchanged shape — a re-steer policy change must be a
// reviewed baseline update too.
//
// Three throughput gates run over the parsed benchmarks: the
// scaling-cliff check (-monotone-tol) on the parallel Mpps curve, the
// churn-regression check (-churn-tol) comparing BenchmarkChurn's
// live-route-churn Mpps against its idle-control-plane sibling — the
// recorded updates/s metric is the sustained FIB write rate the
// forwarding number was measured under — and the wire-I/O check
// (-wire-tol) on BenchmarkWireIO's time-interleaved batch-32 ratio
// run, whose xfall metric is the mmsg-over-fallback speedup measured
// with both paths alternating inside the same timed window. A "wire"
// section records the full path×batch grid (Mpps plus
// syscalls/datagram, the quantity batching amortizes) so the
// trajectory captures how much of the mmsg win each host's
// syscall-entry cost exposes.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkPlacement -benchmem . > out.txt
//	go run ./internal/tools/benchjson -bench out.txt -baseline BENCH_placement.json -out BENCH_placement.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"

	"routebricks"
	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
	"routebricks/internal/rss"
)

// benchResult is one parsed `Benchmark...` output line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// modelInputs pins every cost-model input a calibration decision
// depends on. Two entries with equal inputs must decide the same
// placement on any machine — the invariant the -baseline check
// enforces.
type modelInputs struct {
	Cores             int     `json:"cores"`
	HandoffCycles     float64 `json:"handoff_cycles"`
	CrossSocketFactor float64 `json:"cross_socket_factor"`
	Sockets           int     `json:"sockets"`
	CoresPerSocket    int     `json:"cores_per_socket"`
}

// calResult is one Placement: Auto run under pinned model inputs.
type calResult struct {
	Inputs     modelInputs                     `json:"inputs"`
	Picked     string                          `json:"picked"`
	Decision   string                          `json:"decision"`
	Candidates []routebricks.CalibrationResult `json:"candidates"`
}

// steerInputs pins every input a re-steer decision depends on: the
// indirection-table geometry, the controller's move cap, and the name
// of the synthetic per-bucket load shape (steerLoad generates it
// deterministically). rss.PlanMoves is a pure function, so two entries
// with equal inputs must decide the same moves on any machine — the
// invariant the -baseline check enforces, exactly as for placement.
type steerInputs struct {
	Buckets  int    `json:"buckets"`
	Chains   int    `json:"chains"`
	MaxMoves int    `json:"max_moves"`
	Load     string `json:"load"`
}

// steerResult is one rss.PlanMoves decision under pinned inputs: the
// moves it chose and the max/mean chain imbalance before and after
// applying them.
type steerResult struct {
	Inputs          steerInputs `json:"inputs"`
	ImbalanceBefore float64     `json:"imbalance_before"`
	ImbalanceAfter  float64     `json:"imbalance_after"`
	Moves           []rss.Move  `json:"moves"`
}

// wireResult is one BenchmarkWireIO grid point: syscall path × batch
// size, the measured loopback round-trip rate, and the kernel crossings
// per datagram the path actually performed. Rows with path "ratio" are
// the time-interleaved comparison runs: XFallback is how many times
// faster the mmsg path moved identical windows than the per-packet
// fallback, with both sampled under the same machine noise.
type wireResult struct {
	Path      string  `json:"path"`  // "mmsg", "fallback", or "ratio"
	Batch     int     `json:"batch"` // datagrams per ReadBatch/WriteBatch
	Mpps      float64 `json:"mpps"`
	SysPerPkt float64 `json:"sys_per_pkt,omitempty"`
	XFallback float64 `json:"x_fallback,omitempty"`
}

type output struct {
	Benchmarks  []benchResult `json:"benchmarks"`
	Wire        []wireResult  `json:"wire,omitempty"`
	Calibration []calResult   `json:"calibration"`
	Steering    []steerResult `json:"steering,omitempty"`
}

// parseBench extracts Benchmark lines: name, iteration count, then
// value/unit pairs (ns/op, MB/s, custom metrics like Mpps, B/op,
// allocs/op).
func parseBench(path string) ([]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []benchResult
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		r := benchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// collapseBest reduces repeated runs of the same benchmark (`-count N`)
// to the best one — highest Mpps when the benchmark reports it, lowest
// ns/op otherwise. Best-of is the right estimator for a throughput
// trajectory on shared CI hardware: the slow runs measure the noisy
// neighbor, the fast run measures the code.
func collapseBest(in []benchResult) []benchResult {
	better := func(a, b benchResult) bool {
		am, aok := a.Metrics["Mpps"]
		bm, bok := b.Metrics["Mpps"]
		if aok && bok {
			return am > bm
		}
		return a.Metrics["ns/op"] < b.Metrics["ns/op"]
	}
	idx := make(map[string]int, len(in))
	var out []benchResult
	for _, r := range in {
		if i, ok := idx[r.Name]; ok {
			if better(r, out[i]) {
				out[i] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parallelCores extracts N from a benchmark name like
// "BenchmarkPlacement/parallel/cores=4-8" (the trailing -8 is the
// GOMAXPROCS suffix go test appends). Returns -1 for any other name.
func parallelCores(name string) int {
	const prefix = "BenchmarkPlacement/parallel/cores="
	if !strings.HasPrefix(name, prefix) {
		return -1
	}
	s := name[len(prefix):]
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// checkMonotone is the scaling-cliff gate: parallel placement must not
// lose throughput as cores double. For every parallel entry with 2N
// cores whose N-core sibling exists, Mpps(2N) must be at least
// (1-tol)×Mpps(N) — the tolerance absorbs run-to-run noise, not a
// trend. A violation is exactly the regression this repo's ISSUE 6
// removed; it must never come back silently.
func checkMonotone(results []benchResult, tol float64) error {
	mpps := map[int]float64{}
	for _, r := range results {
		if n := parallelCores(r.Name); n > 0 {
			if v, ok := r.Metrics["Mpps"]; ok {
				mpps[n] = v
			}
		}
	}
	for n, half := range mpps {
		cur, ok := mpps[2*n]
		if !ok {
			continue
		}
		if floor := half * (1 - tol); cur < floor {
			return fmt.Errorf("scaling cliff: parallel Mpps dropped %d cores -> %d cores: %.3f -> %.3f (floor %.3f at tolerance %.2f)",
				n, 2*n, half, cur, floor, tol)
		}
	}
	return nil
}

// churnMode extracts the mode ("idle" or "live") and core count from a
// benchmark name like "BenchmarkChurn/fib=1M/live/cores=2-8" (the
// trailing -8 is the GOMAXPROCS suffix). Returns "", -1 otherwise.
func churnMode(name string) (string, int) {
	const prefix = "BenchmarkChurn/"
	if !strings.HasPrefix(name, prefix) {
		return "", -1
	}
	parts := strings.Split(name[len(prefix):], "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "cores=") {
		return "", -1
	}
	s := strings.TrimPrefix(parts[2], "cores=")
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return "", -1
	}
	return parts[1], n
}

// checkChurn is the churn-regression gate: for every core count where
// both BenchmarkChurn modes ran, forwarding under live route churn must
// hold at least (1-tol)× the idle-control-plane Mpps. The tolerance
// absorbs the writer's real CPU cost (each commit copies the touched
// tbl24 pages, which on a small host competes with the forwarding
// cores); what it
// must catch is a reader-side regression — any change that makes
// lookups pay per-packet synchronization shows up as a collapse here,
// not a percentage.
func checkChurn(results []benchResult, tol float64) error {
	idle := map[int]float64{}
	live := map[int]float64{}
	for _, r := range results {
		mode, cores := churnMode(r.Name)
		if cores < 0 {
			continue
		}
		if v, ok := r.Metrics["Mpps"]; ok {
			switch mode {
			case "idle":
				idle[cores] = v
			case "live":
				live[cores] = v
			}
		}
	}
	for cores, base := range idle {
		cur, ok := live[cores]
		if !ok {
			continue
		}
		if floor := base * (1 - tol); cur < floor {
			return fmt.Errorf("churn regression: %d-core forwarding dropped %.3f -> %.3f Mpps under route churn (floor %.3f at tolerance %.2f)",
				cores, base, cur, floor, tol)
		}
	}
	return nil
}

// wireParams extracts the syscall path ("mmsg", "fallback", or the
// interleaved "ratio" run) and batch size from a benchmark name like
// "BenchmarkWireIO/path=mmsg/batch=32-8" or
// "BenchmarkWireIO/ratio/batch=32-8" (the trailing -8 is the GOMAXPROCS
// suffix). Returns "", -1 for any other name.
func wireParams(name string) (string, int) {
	const prefix = "BenchmarkWireIO/"
	if !strings.HasPrefix(name, prefix) {
		return "", -1
	}
	parts := strings.Split(name[len(prefix):], "/")
	if len(parts) != 2 || !strings.HasPrefix(parts[1], "batch=") {
		return "", -1
	}
	path := strings.TrimPrefix(parts[0], "path=")
	if path != "mmsg" && path != "fallback" && path != "ratio" {
		return "", -1
	}
	s := strings.TrimPrefix(parts[1], "batch=")
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return "", -1
	}
	return path, n
}

// wireSection collects the BenchmarkWireIO grid out of the RAW parsed
// benchmarks (pre-collapse), reducing repeated runs of each grid point
// to their median Mpps — best-of is right for the throughput
// trajectory but a single lucky run misrepresents a grid meant for
// cross-host comparison. Ratio rows (path "ratio") additionally carry
// the median xfall — the interleaved mmsg-over-fallback speedup — the
// x_fallback field checkWire gates on.
func wireSection(results []benchResult) []wireResult {
	type key struct {
		path  string
		batch int
	}
	samples := map[key][]float64{}
	ratios := map[key][]float64{}
	sys := map[key]float64{}
	var order []key
	for _, r := range results {
		path, batch := wireParams(r.Name)
		if batch < 0 {
			continue
		}
		k := key{path, batch}
		if _, ok := samples[k]; !ok {
			order = append(order, k)
		}
		samples[k] = append(samples[k], r.Metrics["Mpps"])
		sys[k] = r.Metrics["sys/pkt"] // invariant across repeats
		if x, ok := r.Metrics["xfall"]; ok {
			ratios[k] = append(ratios[k], x)
		}
	}
	var out []wireResult
	for _, k := range order {
		w := wireResult{
			Path:      k.path,
			Batch:     k.batch,
			Mpps:      median(samples[k]),
			SysPerPkt: sys[k],
		}
		if xs := ratios[k]; len(xs) > 0 {
			w.XFallback = median(xs)
		}
		out = append(out, w)
	}
	return out
}

// median of a non-empty sample set (mean of the middle two when even).
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// checkWire is the wire-I/O regression gate. It consumes the batch-32
// *ratio* row: BenchmarkWireIO/ratio/batch=32 interleaves mmsg and
// fallback round-trip windows in time, so both paths sample the
// identical machine-noise environment, and its xfall metric (fallback
// time over mmsg time for equal datagram counts) stays a clean A/B
// number even on hosts whose effective speed swings 2× over minutes —
// which sank the earlier design of comparing the two per-path
// sub-benchmarks, run minutes apart. The gate fails when the median
// xfall drops below tol. How much headroom xfall shows above 1.0 is
// host-dependent — it tracks the machine's syscall-entry cost
// (KPTI/retpoline hosts approach the 2× the batching saves;
// paravirtualized hosts where entry is ~150ns and the kernel's ~1.6µs
// per-datagram loopback delivery dominates sit near 1.1–1.25×) — so
// the default tolerance 1.0 asserts the host-independent invariant:
// batching 32 datagrams per syscall must never be slower than one
// syscall each. A drop below tol means the fast path itself regressed
// (per-datagram work leaked into the batch loop, a partial-send bug,
// slots not refilling). No ratio row (non-Linux, or the wire bench not
// run) skips the gate.
func checkWire(wire []wireResult, tol float64) error {
	for _, w := range wire {
		if w.Path != "ratio" || w.Batch != 32 || w.XFallback == 0 {
			continue
		}
		if w.XFallback < tol {
			return fmt.Errorf("wire regression: interleaved mmsg-over-fallback speedup at batch 32 is %.3fx, below the %.2fx floor",
				w.XFallback, tol)
		}
		return nil
	}
	return nil
}

// placementConfig mirrors the BenchmarkPlacement workload (the
// standard IP forwarding trunk with per-cause side branches) so the
// calibration scores in the JSON describe the same graph the Mpps
// sweep measured.
const placementConfig = `
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	check[0] -> rt;
	check[1] -> badhdr;
	rt[0]    -> ttl;
	rt[1]    -> badroute;
	ttl[1]   -> badttl;
`

// calibrate runs Placement: Auto over the benchmark workload under the
// given pinned model inputs and reports the decision and candidate
// scores.
func calibrate(in modelInputs) (calResult, error) {
	table := lpm.NewDir248()
	if err := table.Insert(netip.MustParsePrefix("10.0.0.0/16"), 1); err != nil {
		return calResult{}, err
	}
	table.Freeze()
	sink := func() routebricks.Element { return &elements.Sink{Recycle: pkt.DefaultPool} }
	topo := routebricks.Topology{Sockets: in.Sockets, CoresPerSocket: in.CoresPerSocket}
	pipe, err := routebricks.Load(placementConfig, routebricks.Options{
		Cores:         in.Cores,
		Placement:     routebricks.Auto,
		Topology:      &topo,
		HandoffCycles: in.HandoffCycles,
		Prebound: func(int) map[string]routebricks.Element {
			return map[string]routebricks.Element{
				"fib":      elements.NewLPMLookup(table),
				"badhdr":   sink(),
				"badroute": sink(),
				"badttl":   sink(),
			}
		},
		Sink: func(int) routebricks.Element { return sink() },
	})
	if err != nil {
		return calResult{}, err
	}
	decision := ""
	if s := pipe.Snapshot(); s.Decision != "" {
		decision = s.Decision
	}
	return calResult{
		Inputs:     in,
		Picked:     pipe.Placement().String(),
		Decision:   decision,
		Candidates: pipe.Calibration(),
	}, nil
}

// sweepInputs is the pinned calibration grid: each core count on a
// flat topology and — where the cores split — on a two-socket one, so
// the trajectory records both the same-socket and the cross-socket
// decision. HandoffCycles is pinned to the model's default rather than
// measured, precisely so the recorded decisions are comparable across
// machines.
func sweepInputs() []modelInputs {
	var out []modelInputs
	for _, cores := range []int{1, 2, 4, 8} {
		out = append(out, modelInputs{
			Cores:             cores,
			HandoffCycles:     click.DefaultHandoffCycles,
			CrossSocketFactor: click.DefaultCrossSocketFactor,
			Sockets:           1,
		})
		if cores >= 2 {
			out = append(out, modelInputs{
				Cores:             cores,
				HandoffCycles:     click.DefaultHandoffCycles,
				CrossSocketFactor: click.DefaultCrossSocketFactor,
				Sockets:           2,
				CoresPerSocket:    cores / 2,
			})
		}
	}
	return out
}

// steerLoad builds the named synthetic per-bucket load over the
// round-robin assignment a fresh table starts with. Deterministic by
// construction: the same name and geometry always yield the same
// vectors, which is what lets the baseline diff treat the decided moves
// as a pure function of steerInputs.
func steerLoad(name string, buckets, chains int) (assign []int, load []uint64, err error) {
	assign = make([]int, buckets)
	for b := range assign {
		assign[b] = b % chains
	}
	load = make([]uint64, buckets)
	switch name {
	case "uniform":
		// Flat load: the planner must decide there is nothing to move.
		for b := range load {
			load[b] = 100
		}
	case "hot-chain0":
		// Eight elephant buckets, all owned by chain 0 — the shape the
		// controller's re-steer exists for.
		for b := range load {
			load[b] = 10
		}
		for i := 0; i < 8; i++ {
			load[i*chains] = 1000
		}
	default:
		return nil, nil, fmt.Errorf("unknown steer load %q", name)
	}
	return assign, load, nil
}

// decideSteer runs one pinned re-steer decision: PlanMoves over the
// synthetic load, imbalance measured before and after the moves apply.
func decideSteer(in steerInputs) (steerResult, error) {
	assign, load, err := steerLoad(in.Load, in.Buckets, in.Chains)
	if err != nil {
		return steerResult{}, err
	}
	before := rss.Imbalance(assign, load, in.Chains)
	moves := rss.PlanMoves(assign, load, in.Chains, in.MaxMoves)
	after := append([]int(nil), assign...)
	for _, m := range moves {
		after[m.Bucket] = m.To
	}
	return steerResult{
		Inputs:          in,
		ImbalanceBefore: before,
		ImbalanceAfter:  rss.Imbalance(after, load, in.Chains),
		Moves:           moves,
	}, nil
}

// steerSweep is the pinned re-steer grid: each multi-chain width the
// placement sweep covers, under a flat load and the hot-chain skew,
// with the controller's default move cap.
func steerSweep() []steerInputs {
	var out []steerInputs
	for _, chains := range []int{2, 4, 8} {
		for _, load := range []string{"uniform", "hot-chain0"} {
			out = append(out, steerInputs{Buckets: rss.DefaultBuckets, Chains: chains, MaxMoves: 8, Load: load})
		}
	}
	return out
}

// checkBaseline fails when a decision — Auto's placement pick or
// PlanMoves' bucket migration — changed while its inputs did not.
// Entries the baseline has no matching inputs for (a new grid point, or
// a pre-inputs file) are skipped.
func checkBaseline(path string, cur []calResult, steer []steerResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil // no baseline yet: nothing to diff against
	}
	var base output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	prev := make(map[modelInputs]string, len(base.Calibration))
	for _, c := range base.Calibration {
		if c.Inputs != (modelInputs{}) {
			prev[c.Inputs] = c.Picked
		}
	}
	for _, c := range cur {
		if was, ok := prev[c.Inputs]; ok && was != c.Picked {
			return fmt.Errorf("placement decision changed for inputs %+v: %s -> %s with unchanged cost-model inputs (if intentional, commit the regenerated %s)",
				c.Inputs, was, c.Picked, path)
		}
	}
	prevSteer := make(map[steerInputs]string, len(base.Steering))
	for _, s := range base.Steering {
		if s.Inputs != (steerInputs{}) {
			prevSteer[s.Inputs] = fmt.Sprint(s.Moves)
		}
	}
	for _, s := range steer {
		if was, ok := prevSteer[s.Inputs]; ok && was != fmt.Sprint(s.Moves) {
			return fmt.Errorf("re-steer decision changed for inputs %+v: %s -> %s with unchanged load shape (if intentional, commit the regenerated %s)",
				s.Inputs, was, fmt.Sprint(s.Moves), path)
		}
	}
	return nil
}

func run() error {
	benchPath := flag.String("bench", "", "go test -bench output to parse")
	outPath := flag.String("out", "BENCH_placement.json", "JSON file to write")
	basePath := flag.String("baseline", "", "previous JSON to diff decisions against (fails on a decision change with unchanged inputs)")
	monoTol := flag.Float64("monotone-tol", 0.15, "tolerated fractional Mpps drop when parallel cores double (scaling-cliff gate); negative disables")
	churnTol := flag.Float64("churn-tol", 0.50, "tolerated fractional Mpps drop under live FIB churn vs the idle control plane (churn-regression gate); negative disables")
	wireTol := flag.Float64("wire-tol", 1.0, "required mmsg-over-fallback speedup (median xfall) at batch 32, measured time-interleaved (wire-I/O gate — see checkWire); negative disables")
	flag.Parse()

	var doc output
	monoErr := error(nil)
	churnErr := error(nil)
	wireErr := error(nil)
	if *benchPath != "" {
		b, err := parseBench(*benchPath)
		if err != nil {
			return fmt.Errorf("parse %s: %w", *benchPath, err)
		}
		doc.Benchmarks = collapseBest(b)
		doc.Wire = wireSection(b) // raw repeats: the wire grid wants medians, not best-of
		if *monoTol >= 0 {
			monoErr = checkMonotone(doc.Benchmarks, *monoTol)
		}
		if *churnTol >= 0 {
			churnErr = checkChurn(doc.Benchmarks, *churnTol)
		}
		if *wireTol >= 0 {
			wireErr = checkWire(doc.Wire, *wireTol)
		}
	}
	for _, in := range sweepInputs() {
		c, err := calibrate(in)
		if err != nil {
			return fmt.Errorf("calibrate %+v: %w", in, err)
		}
		doc.Calibration = append(doc.Calibration, c)
	}
	for _, in := range steerSweep() {
		s, err := decideSteer(in)
		if err != nil {
			return fmt.Errorf("steer %+v: %w", in, err)
		}
		doc.Steering = append(doc.Steering, s)
	}
	// Diff before overwriting (the baseline is usually the same file),
	// but always write the regenerated document: a flagged decision
	// change or scaling cliff still fails the run, and the written file
	// is exactly what the operator reviews and commits to accept it.
	diffErr := error(nil)
	if *basePath != "" {
		diffErr = checkBaseline(*basePath, doc.Calibration, doc.Steering)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
		return err
	}
	if diffErr != nil {
		return diffErr
	}
	if monoErr != nil {
		return monoErr
	}
	if churnErr != nil {
		return churnErr
	}
	return wireErr
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
