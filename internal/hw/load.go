package hw

// This file holds the calibrated per-packet cost model. Every constant is
// derived from a number printed in the paper; the derivations:
//
// CPU cycles. The model is
//
//	cycles(P) = A_app(P) + CPoll/kp + CNIC/kn + contention + penalties
//
// where A_app is the application's own work, CPoll the per-poll
// book-keeping amortized over kp packets per poll, CNIC the descriptor
// transfer book-keeping amortized over kn descriptors per PCIe
// transaction (§4.2 "batch processing"). Solving the three Table 1 rows
// (1.46 / 4.97 / 9.77 Gbps at 64 B on 8×2.8 GHz) gives
//
//	CPoll = 5722, CNIC = 1201, A_fwd(64) = 927 cycles.
//
// Packet-size scaling: §5.3 measures the 1024 B per-packet CPU load at
// 1.6× the 64 B load; with A(P) = a + b·P and the (kp,kn)=(32,16) totals
// this yields b = 0.7385 cycles/byte, a = 879.7 for minimal forwarding.
// IP routing adds a size-independent lookup+header cost: Table 3 gives
// 1512 instr × 1.23 CPI ≈ 1860 total cycles at 64 B and Fig 8 gives
// 6.35 Gbps, i.e. A_rtr(64) = 1552. IPsec is dominated by AES: Fig 8's
// 1.4 Gbps (64 B) and 4.45 Gbps (Abilene, mean 740 B) anchor
// A_ipsec(P) = 5487 + 32.5·P.
//
// Core-count contention. §4.2's NUMA experiment measures 6.3 Gbps with 4
// cores while 8 cores reach 9.7 Gbps; a linear contention term of 67.75
// cycles/packet per active core (anchored at the 8-core calibration)
// reproduces both points.
//
// Queue contention. Fig 6(e) measures 0.7 Gbps/FP when two forwarding
// paths share an un-partitioned transmit queue vs 1.7 Gbps with multiple
// queues: a contended queue access costs LockCycles ≈ 1205. Pipeline
// handoff between cores costs SyncCycles ≈ 775 (Fig 6(a): 1.7 → 1.2
// Gbps) and a cross-L3 handoff additionally RemoteMissCycles ≈ 1197
// (1.2 → 0.6 Gbps).
//
// Bus bytes per packet (Fig 10). Loads are linear in packet size and
// anchored to the paper's measured ratios (memory 6×, I/O 11× between
// 1024 B and 64 B, §5.3) with physically motivated forms:
//
//	mem_fwd(P)  = 2P + 256       (DMA in + out, descriptor churn)
//	io(P)       = 2P + 64
//	pcie(P)     = 2P + 32/kn     (payload both ways + batched descriptors;
//	                              the 50.8 Gbps empirical PCIe bound is the
//	                              NIC payload ceiling seen from the bus, so
//	                              the NIC cap binds first at every size)
//	qpi(P)      = 0.23 × mem(P)  (23% remote accesses, §4.2)
//
// Routing adds route-table DRAM traffic; its value (1301 B/pkt) is fixed
// by the §5.3 projection that routing becomes memory-bound at 19.9 Gbps
// on the 2×-memory next-gen part.

// App identifies one of the paper's three packet-processing applications
// (§5.1).
type App int

const (
	// Forward is minimal forwarding: port-to-port, no header processing.
	Forward App = iota
	// Route is full IP routing: checksum, TTL, DIR-24-8 lookup over 256K
	// random-destination routes.
	Route
	// IPsec encrypts every packet with AES-128 (VPN gateway).
	IPsec
)

// String names the application as in the paper's figures.
func (a App) String() string {
	switch a {
	case Forward:
		return "fwd"
	case Route:
		return "rtr"
	case IPsec:
		return "ipsec"
	}
	return "unknown"
}

// Calibration constants (cycles). See the file comment for derivations.
const (
	CPoll = 5722.0 // per-poll book-keeping, amortized by kp
	CNIC  = 1201.0 // per-descriptor-transaction book-keeping, amortized by kn

	fwdBase      = 879.7  // A_fwd(P) = fwdBase + perByte·P
	perByte      = 0.7385 // size slope shared by fwd and rtr
	rtrExtra     = 625.0  // routing lookup + header rewrite on top of fwd
	ipsecBase    = 5487.0 // A_ipsec(P) = ipsecBase + ipsecPerByte·P
	ipsecPerByte = 32.5

	// ContentionPerCore inflates per-packet cycles as more cores contend
	// for the shared memory system; anchored at 8 cores.
	ContentionPerCore = 67.75
	contentionAnchor  = 8

	// Fig 6 toy-scenario penalties.
	SyncCycles       = 775.0  // inter-core handoff (pipeline)
	RemoteMissCycles = 1197.0 // handoff crossing the L3/socket boundary
	LockCycles       = 1205.0 // access to a queue shared between cores

	// RB4 reordering-avoidance book-keeping at the input node (§6.2):
	// per-flow counters, arrival timestamps, link-utilization tracking.
	ReorderTaxCycles = 836.0
)

// CPI values measured by the paper (Table 3), used to report
// instructions/packet alongside cycles.
var cpi = map[App]float64{Forward: 1.19, Route: 1.23, IPsec: 0.55}

// CPI reports the paper's measured cycles-per-instruction for app.
func CPI(a App) float64 { return cpi[a] }

// Config selects the software configuration under test (§4.2 knobs).
type Config struct {
	KP int // packets per poll (Click "burst"); 1 = no poll batching
	KN int // descriptors per NIC transaction; 1 = no NIC batching

	// MultiQueue enables per-core NIC queues ("one core per queue, one
	// core per packet"). Without it, cores contend on shared queues.
	MultiQueue bool

	// Cores limits the active core count; 0 means all cores in the spec.
	Cores int

	// ReorderTax charges the RB4 flowlet book-keeping to each packet.
	ReorderTax bool
}

// DefaultConfig is the tuned configuration the paper settles on:
// kp=32, kn=16, multi-queue NICs (§4.2).
func DefaultConfig() Config {
	return Config{KP: 32, KN: 16, MultiQueue: true}
}

func (c Config) kp() float64 {
	if c.KP < 1 {
		return 1
	}
	return float64(c.KP)
}

func (c Config) kn() float64 {
	if c.KN < 1 {
		return 1
	}
	return float64(c.KN)
}

func (c Config) cores(s Spec) int {
	if c.Cores <= 0 || c.Cores > s.Cores() {
		return s.Cores()
	}
	return c.Cores
}

// Load is the per-packet demand a workload places on each system
// component (the y-axes of Figs 9 and 10).
type Load struct {
	Cycles    float64 // CPU cycles/packet
	MemBytes  float64 // memory-bus bytes/packet
	IOBytes   float64 // socket-I/O link bytes/packet
	PCIeBytes float64 // PCIe bytes/packet
	QPIBytes  float64 // inter-socket bytes/packet
}

// Add returns the componentwise sum, for composing per-hop loads.
func (l Load) Add(m Load) Load {
	return Load{
		Cycles:    l.Cycles + m.Cycles,
		MemBytes:  l.MemBytes + m.MemBytes,
		IOBytes:   l.IOBytes + m.IOBytes,
		PCIeBytes: l.PCIeBytes + m.PCIeBytes,
		QPIBytes:  l.QPIBytes + m.QPIBytes,
	}
}

// Scale returns the load multiplied by f.
func (l Load) Scale(f float64) Load {
	return Load{
		Cycles:    l.Cycles * f,
		MemBytes:  l.MemBytes * f,
		IOBytes:   l.IOBytes * f,
		PCIeBytes: l.PCIeBytes * f,
		QPIBytes:  l.QPIBytes * f,
	}
}

// appCycles is A_app(P): the application's own per-packet work, excluding
// book-keeping and contention.
func appCycles(a App, size float64) float64 {
	switch a {
	case Forward:
		return fwdBase + perByte*size
	case Route:
		return fwdBase + rtrExtra + perByte*size
	case IPsec:
		return ipsecBase + ipsecPerByte*size
	}
	panic("hw: unknown app")
}

// PacketLoad computes the per-packet load for an application processing
// packets of the given size under cfg on spec.
func PacketLoad(a App, size int, cfg Config, spec Spec) Load {
	p := float64(size)
	cycles := appCycles(a, p) + CPoll/cfg.kp() + CNIC/cfg.kn()
	// Fewer active cores contend less for the shared memory system (the
	// §4.2 NUMA experiment's 4-core point); above the 8-core anchor the
	// per-packet load stays constant, which is exactly the assumption the
	// paper's §5.3 projection makes.
	if c := cfg.cores(spec); c < contentionAnchor {
		cycles += ContentionPerCore * float64(c-contentionAnchor)
	}
	if !cfg.MultiQueue {
		// Shared queues: lock + handoff penalties surface once batching
		// stops hiding them behind book-keeping (1 - 1/kp scaling keeps
		// the no-batching anchor at Table 1 row 1).
		cycles += (LockCycles + SyncCycles) * (1 - 1/cfg.kp())
	}
	if cfg.ReorderTax {
		cycles += ReorderTaxCycles
	}

	mem := 2*p + 256
	if a == Route {
		mem += 1301 // DIR-24-8 random-destination DRAM traffic
	}
	if a == IPsec {
		mem += 64 // SA + IV state
	}
	return Load{
		Cycles:    cycles,
		MemBytes:  mem,
		IOBytes:   2*p + 64,
		PCIeBytes: 2*p + 32/cfg.kn(),
		QPIBytes:  0.23 * (2*p + 256),
	}
}

// Instructions estimates instructions/packet from the modeled cycles and
// the paper's measured CPI (Table 3).
func Instructions(a App, size int, cfg Config, spec Spec) float64 {
	return PacketLoad(a, size, cfg, spec).Cycles / CPI(a)
}
