package hw

import (
	"math"
	"testing"
	"testing/quick"
)

// within asserts got is within tol (relative) of want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero want", name)
	}
	if r := math.Abs(got-want) / math.Abs(want); r > tol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%), off by %.1f%%", name, got, want, tol*100, r*100)
	}
}

// Table 1 anchors: polling configurations on the tuned Nehalem (64 B
// minimal forwarding, all 8 cores, multi-queue).
func TestTable1Anchors(t *testing.T) {
	spec := Nehalem()
	cases := []struct {
		kp, kn int
		gbps   float64
	}{
		{1, 1, 1.46},
		{32, 1, 4.97},
		{32, 16, 9.77},
	}
	for _, c := range cases {
		cfg := Config{KP: c.kp, KN: c.kn, MultiQueue: true}
		r := MaxRate(spec, Forward, 64, cfg)
		within(t, "table1", r.Gbps, c.gbps, 0.02)
		if r.Bottleneck != "cpu" {
			t.Errorf("kp=%d kn=%d bottleneck = %s, want cpu", c.kp, c.kn, r.Bottleneck)
		}
	}
}

// Fig 8 anchors: per-application rates at 64 B and on the Abilene-like
// mean (§5.2): fwd 9.7/24.6, rtr 6.35/24.6, ipsec 1.4/4.45 Gbps.
func TestFig8Anchors(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	const abilene = 738.3

	within(t, "fwd/64", MaxRate(spec, Forward, 64, cfg).Gbps, 9.7, 0.02)
	within(t, "rtr/64", MaxRate(spec, Route, 64, cfg).Gbps, 6.35, 0.02)
	within(t, "ipsec/64", MaxRate(spec, IPsec, 64, cfg).Gbps, 1.4, 0.05)

	fa := MaxRateMean(spec, Forward, abilene, cfg)
	within(t, "fwd/abilene", fa.Gbps, 24.6, 0.01)
	if fa.Bottleneck != "nic" {
		t.Errorf("fwd/abilene bottleneck = %s, want nic", fa.Bottleneck)
	}
	ra := MaxRateMean(spec, Route, abilene, cfg)
	within(t, "rtr/abilene", ra.Gbps, 24.6, 0.01)
	if ra.Bottleneck != "nic" {
		t.Errorf("rtr/abilene bottleneck = %s, want nic", ra.Bottleneck)
	}
	ia := MaxRateMean(spec, IPsec, abilene, cfg)
	within(t, "ipsec/abilene", ia.Gbps, 4.45, 0.02)
	if ia.Bottleneck != "cpu" {
		t.Errorf("ipsec/abilene bottleneck = %s, want cpu", ia.Bottleneck)
	}
}

// Large packets saturate the NIC complement, not the server (§5.2).
func TestLargePacketsNICLimited(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	for _, size := range []int{256, 512, 1024} {
		r := MaxRate(spec, Forward, size, cfg)
		within(t, "fwd/large", r.Gbps, 24.6, 0.01)
		if r.Bottleneck != "nic" {
			t.Errorf("size %d bottleneck = %s, want nic", size, r.Bottleneck)
		}
	}
}

// Fig 7 anchors: the cumulative impact of architecture, multi-queue and
// batching. 6.7× over untuned Nehalem, 11× over shared-bus Xeon.
func TestFig7Anchors(t *testing.T) {
	tunedr := MaxRate(Nehalem(), Forward, 64, DefaultConfig())
	within(t, "tuned", tunedr.PPS/1e6, 18.96, 0.02)

	untuned := MaxRate(Nehalem(), Forward, 64, Config{KP: 1, KN: 1})
	within(t, "nehalem-untuned", tunedr.PPS/untuned.PPS, 6.7, 0.05)

	xeon := MaxRate(Xeon(), Forward, 64, Config{KP: 1, KN: 1})
	within(t, "xeon", tunedr.PPS/xeon.PPS, 11, 0.05)
	if xeon.Bottleneck != "fsb" {
		t.Errorf("xeon bottleneck = %s, want fsb", xeon.Bottleneck)
	}

	// Batching cannot rescue the shared-bus architecture (§4.2 "multi-core
	// alone is not enough" — the FSB binds regardless).
	xeonBatched := MaxRate(Xeon(), Forward, 64, DefaultConfig())
	within(t, "xeon-batched", xeonBatched.PPS, xeon.PPS, 0.001)

	// Single-queue with batching sits strictly between untuned and tuned.
	sq := MaxRate(Nehalem(), Forward, 64, Config{KP: 32, KN: 16})
	if !(sq.PPS > untuned.PPS && sq.PPS < tunedr.PPS) {
		t.Errorf("single-queue batched rate %.2f Mpps not between %.2f and %.2f",
			sq.PPS/1e6, untuned.PPS/1e6, tunedr.PPS/1e6)
	}
}

// §4.2 NUMA experiment: 4 cores reach 6.3 Gbps, and data placement
// (remote descriptors) makes no difference in the model, as measured.
func TestNUMAFourCoreAnchor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	r := MaxRate(Nehalem(), Forward, 64, cfg)
	within(t, "4-core fwd", r.Gbps, 6.3, 0.02)
}

// §5.3 projections on the next-generation server: 38.8 / 19.9 / 5.8 Gbps
// for fwd / rtr / ipsec at 64 B; routing becomes memory-bound.
func TestNextGenProjections(t *testing.T) {
	spec := NehalemNext()
	cfg := DefaultConfig()

	f := MaxRate(spec, Forward, 64, cfg)
	within(t, "next/fwd", f.Gbps, 38.8, 0.02)
	if f.Bottleneck != "cpu" {
		t.Errorf("next/fwd bottleneck = %s, want cpu", f.Bottleneck)
	}

	r := MaxRate(spec, Route, 64, cfg)
	within(t, "next/rtr", r.Gbps, 19.9, 0.02)
	if r.Bottleneck != "mem" {
		t.Errorf("next/rtr bottleneck = %s, want mem (the paper's projected crossover)", r.Bottleneck)
	}

	i := MaxRate(spec, IPsec, 64, cfg)
	within(t, "next/ipsec", i.Gbps, 5.8, 0.02)
}

// Fig 6 anchors: toy scenario rates.
func TestFig6Anchors(t *testing.T) {
	spec := Nehalem()
	_, par := ToyRate(spec, ParallelFP)
	within(t, "parallel", par, 1.7, 0.02)

	_, pipe := ToyRate(spec, PipelineSharedCache)
	within(t, "pipeline/shared", pipe, 1.2, 0.02)

	_, cross := ToyRate(spec, PipelineCrossCache)
	within(t, "pipeline/cross", cross, 0.6, 0.02)

	_, ovl := ToyRate(spec, OverlapSingleQueue)
	within(t, "overlap/1q", ovl, 0.7, 0.02)

	_, ovlMQ := ToyRate(spec, OverlapMultiQueue)
	within(t, "overlap/mq", ovlMQ, 1.7, 0.02)

	splitTotal, _ := ToyRate(spec, SplitterSingleQueue)
	mqTotal, _ := ToyRate(spec, SplitterMultiQueue)
	if mqTotal < 3*splitTotal {
		t.Errorf("multi-queue splitter %.2f not >3x single-queue %.2f (paper: 'more than three times')",
			mqTotal, splitTotal)
	}

	// Sync-only drop ~29%, sync+miss drop ~64% (§4.2).
	within(t, "sync drop", 1-pipe/par, 0.29, 0.05)
	within(t, "miss drop", 1-cross/par, 0.64, 0.05)
}

// Table 3: the modeled cycles divided by the paper's CPI land near the
// paper's instruction counts.
func TestTable3Instructions(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	within(t, "fwd instr", Instructions(Forward, 64, cfg, spec), 1033, 0.05)
	within(t, "rtr instr", Instructions(Route, 64, cfg, spec), 1512, 0.05)
	within(t, "ipsec instr", Instructions(IPsec, 64, cfg, spec), 14221, 0.02)
}

// Fig 9/10: per-packet loads are constant in input rate (the paper's
// extrapolation lever) and sit below the empirical component bounds at
// the saturation rate for every app.
func TestLoadsFlatAndBelowBounds(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	for _, app := range []App{Forward, Route, IPsec} {
		load := PacketLoad(app, 64, cfg, spec)
		r := MaxRate(spec, app, 64, cfg)
		u := Utilization(spec, load, 8, 64, r.PPS)
		for comp, util := range u {
			if comp == r.Bottleneck {
				if math.Abs(util-1) > 1e-9 {
					t.Errorf("%v: bottleneck %s utilization = %.3f, want 1", app, comp, util)
				}
				continue
			}
			if util > 1+1e-9 {
				t.Errorf("%v: non-bottleneck %s over capacity (%.2f)", app, comp, util)
			}
		}
	}
}

// Memory/IO per-packet load ratios between 1024 B and 64 B match the
// paper's measured 6× / 11× / 1.6× (§5.3 point 2).
func TestSizeScalingRatios(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	small := PacketLoad(Forward, 64, cfg, spec)
	big := PacketLoad(Forward, 1024, cfg, spec)
	within(t, "mem ratio", big.MemBytes/small.MemBytes, 6, 0.01)
	within(t, "io ratio", big.IOBytes/small.IOBytes, 11, 0.01)
	within(t, "cpu ratio", big.Cycles/small.Cycles, 1.6, 0.01)
}

func TestSpecDerived(t *testing.T) {
	n := Nehalem()
	if n.Cores() != 8 {
		t.Errorf("Cores = %d", n.Cores())
	}
	if n.CyclesPerSec() != 8*2.8e9 {
		t.Errorf("CyclesPerSec = %g", n.CyclesPerSec())
	}
	if n.MaxInputBps() != 24.6e9 {
		t.Errorf("MaxInputBps = %g", n.MaxInputBps())
	}
	nx := NehalemNext()
	if nx.Cores() != 32 {
		t.Errorf("next Cores = %d", nx.Cores())
	}
}

func TestLoadAlgebra(t *testing.T) {
	a := Load{Cycles: 1, MemBytes: 2, IOBytes: 3, PCIeBytes: 4, QPIBytes: 5}
	b := a.Scale(2)
	if b.Cycles != 2 || b.QPIBytes != 10 {
		t.Errorf("Scale = %+v", b)
	}
	c := a.Add(b)
	if c.MemBytes != 6 || c.PCIeBytes != 12 {
		t.Errorf("Add = %+v", c)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config // zero config: kp=kn=1, single queue, all cores
	if cfg.kp() != 1 || cfg.kn() != 1 {
		t.Errorf("zero config kp/kn = %g/%g", cfg.kp(), cfg.kn())
	}
	if got := cfg.cores(Nehalem()); got != 8 {
		t.Errorf("zero config cores = %d", got)
	}
	cfg.Cores = 99
	if got := cfg.cores(Nehalem()); got != 8 {
		t.Errorf("oversized cores = %d", got)
	}
}

// Property: MaxRate is monotone — bigger packets never raise the packet
// rate, and more batching never lowers it.
func TestPropertyMonotonicity(t *testing.T) {
	spec := Nehalem()
	f := func(size8 uint8, kp8, kn8 uint8) bool {
		size := 64 + int(size8)%1200
		kp := 1 + int(kp8)%32
		kn := 1 + int(kn8)%16
		base := MaxRate(spec, Forward, size, Config{KP: kp, KN: kn, MultiQueue: true})
		bigger := MaxRate(spec, Forward, size+64, Config{KP: kp, KN: kn, MultiQueue: true})
		moreBatch := MaxRate(spec, Forward, size, Config{KP: kp + 1, KN: kn + 1, MultiQueue: true})
		return bigger.PPS <= base.PPS+1e-9 && moreBatch.PPS >= base.PPS-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported bottleneck is the argmin of the per-component
// saturation rates.
func TestPropertyBottleneckIsArgmin(t *testing.T) {
	spec := Nehalem()
	f := func(appN uint8, size8 uint8) bool {
		app := App(int(appN) % 3)
		size := 64 + int(size8)%1200
		r := MaxRate(spec, app, size, DefaultConfig())
		min := math.Inf(1)
		for _, v := range r.PerComponent {
			if v < min {
				min = v
			}
		}
		return math.Abs(r.PerComponent[r.Bottleneck]-min) < 1e-6*min && math.Abs(r.PPS-min) < 1e-6*min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MaxRateMean at an integer size equals MaxRate at that size.
func TestMeanSizeConsistency(t *testing.T) {
	spec := Nehalem()
	cfg := DefaultConfig()
	a := MaxRate(spec, Route, 512, cfg)
	b := MaxRateMean(spec, Route, 512.0, cfg)
	if math.Abs(a.PPS-b.PPS) > 1 {
		t.Errorf("MaxRate=%.2f MaxRateMean=%.2f", a.PPS, b.PPS)
	}
}

func BenchmarkMaxRate(b *testing.B) {
	spec := Nehalem()
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxRate(spec, Route, 64, cfg)
	}
}
