// Package hw models the server hardware of the RouteBricks evaluation:
// the dual-socket Intel Nehalem prototype (Fig 4), the shared-bus Xeon it
// is compared against (Fig 5), and the projected 4-socket next-generation
// part (§5.3).
//
// The model is the substitution for physical testbed hardware (see
// DESIGN.md §2). It follows the paper's own methodology (§5.3): each
// system component — CPUs, memory buses, socket-I/O links, inter-socket
// links, PCIe buses — has a capacity; every packet imposes a per-packet
// load on each component; the maximum loss-free forwarding rate is the
// smallest capacity/load ratio, additionally capped by the per-NIC PCIe
// rate. All calibration constants are derived from numbers printed in the
// paper; the derivations are spelled out in load.go and DESIGN.md §6.
package hw

// Spec describes one server generation. Bus capacities are in bits per
// second and come in two flavors, mirroring the paper's Table 2: the
// nominal rated capacity and the empirical upper bound measured with
// stream benchmarks.
type Spec struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ClockHz        float64

	// Aggregate capacities, bits/second (Table 2).
	MemNominalBps float64
	MemEmpBps     float64
	QPINominalBps float64 // inter-socket link
	QPIEmpBps     float64
	IONominalBps  float64 // socket-I/O links
	IOEmpBps      float64
	PCIeNomBps    float64
	PCIeEmpBps    float64

	// SharedBus marks the pre-Nehalem architecture (Fig 5): all memory
	// and I/O traffic crosses one front-side bus whose effective capacity
	// under the packet-access pattern is FSBEffBps.
	SharedBus bool
	FSBEffBps float64

	// NIC complement. PerNICBps is the per-NIC payload ceiling the paper
	// measures for a dual-port 10G NIC in a PCIe1.1 x8 slot (12.3 Gbps,
	// §4.1).
	NICs        int
	PortsPerNIC int
	PerNICBps   float64
	PortRateBps float64
}

// Cores reports the total core count.
func (s Spec) Cores() int { return s.Sockets * s.CoresPerSocket }

// CyclesPerSec reports the aggregate CPU cycle budget.
func (s Spec) CyclesPerSec() float64 { return float64(s.Cores()) * s.ClockHz }

// MaxInputBps is the highest input rate the NIC complement can deliver to
// the server (24.6 Gbps on the prototype, §4.1).
func (s Spec) MaxInputBps() float64 { return float64(s.NICs) * s.PerNICBps }

// Nehalem returns the paper's evaluation server: 2 sockets × 4 cores at
// 2.8 GHz, 8 MB L3 per socket, integrated memory controllers, two
// dual-port 10G NICs on PCIe1.1 x8 (§4.1, Table 2).
func Nehalem() Spec {
	return Spec{
		Name:           "nehalem",
		Sockets:        2,
		CoresPerSocket: 4,
		ClockHz:        2.8e9,
		MemNominalBps:  410e9,
		MemEmpBps:      262e9,
		QPINominalBps:  200e9,
		QPIEmpBps:      144.34e9,
		IONominalBps:   400e9, // 2 × 200 Gbps socket-I/O links
		IOEmpBps:       117e9,
		PCIeNomBps:     64e9, // 2 NICs × 8 lanes × 2 Gbps × 2 directions
		PCIeEmpBps:     50.8e9,
		NICs:           2,
		PortsPerNIC:    2,
		PerNICBps:      12.3e9,
		PortRateBps:    10e9,
	}
}

// Xeon returns the shared-bus comparison server (Fig 5): eight 2.4 GHz
// cores behind a single front-side bus and external memory controller.
// FSBEffBps is calibrated so the minimal-forwarding saturation point
// lands at the paper's Fig 7 Xeon bar (1.72 Mpps at 64 B — 11× below the
// tuned Nehalem), reflecting the earlier finding ([29], §4.2) that the
// shared bus, not the cores, is the bottleneck: adding cores or batching
// does not help this spec.
func Xeon() Spec {
	// 1.72 Mpps × 576 B/pkt of memory+I/O traffic ≈ 7.93 Gbps effective.
	return Spec{
		Name:           "xeon-sharedbus",
		Sockets:        2,
		CoresPerSocket: 4,
		ClockHz:        2.4e9,
		MemNominalBps:  68e9, // FSB 1066 MT/s × 8 B nominal
		MemEmpBps:      7.93e9,
		IONominalBps:   68e9,
		IOEmpBps:       7.93e9,
		PCIeNomBps:     64e9,
		PCIeEmpBps:     50.8e9,
		SharedBus:      true,
		FSBEffBps:      7.93e9,
		NICs:           2,
		PortsPerNIC:    2,
		PerNICBps:      12.3e9,
		PortRateBps:    10e9,
	}
}

// NehalemNext returns the §5.3 projection target: 4 sockets × 8 cores
// (4× CPU), 2× memory and 2× I/O capacity, and enough PCIe2.0 slots that
// the NIC ceiling stops binding first. The paper projects 38.8 / 19.9 /
// 5.8 Gbps at 64 B for forwarding / routing / IPsec on this machine.
func NehalemNext() Spec {
	s := Nehalem()
	s.Name = "nehalem-next"
	s.Sockets = 4
	s.CoresPerSocket = 8
	s.MemNominalBps *= 2
	s.MemEmpBps *= 2
	s.QPINominalBps *= 2
	s.QPIEmpBps *= 2
	s.IONominalBps *= 2
	s.IOEmpBps *= 2
	s.PCIeNomBps *= 4 // PCIe2.0, 4-8 slots
	s.PCIeEmpBps *= 4
	s.NICs = 8
	s.PerNICBps = 24.6e9 // PCIe2.0 x8 doubles the per-NIC payload ceiling
	return s
}
