package hw

// Fig 6 toy scenarios: how packet handling should be spread over cores.
// The paper constructs simple forwarding paths (FPs) between interface
// pairs and measures 64 B forwarding rate per FP under six placements.
// The model reproduces them from four constants: the one-core handling
// cost (ToyCycles, from the 1.7 Gbps parallel anchor) and the penalty
// constants in load.go.

// ToyCycles is the per-packet cost of one core doing the whole
// receive-process-transmit path in the Fig 6 toy setup (64 B packets,
// default batching): 2.8e9 cycles / (1.7 Gbps / 512 bits) ≈ 843.
const ToyCycles = 843.0

// Scenario identifies one of the Fig 6 placements.
type Scenario int

const (
	// PipelineSharedCache: core A polls, hands off to core B on the same
	// L3 for processing+transmit (Fig 6a, upper).
	PipelineSharedCache Scenario = iota
	// PipelineCrossCache: as above but the cores sit on different
	// sockets, so the handoff misses L3 (Fig 6a, lower).
	PipelineCrossCache
	// ParallelFP: one core per FP does everything (Fig 6b).
	ParallelFP
	// SplitterSingleQueue: one port, one receive queue; a polling core
	// splits traffic to worker cores (Fig 6c; here 1 splitter + 2 workers).
	SplitterSingleQueue
	// SplitterMultiQueue: the same cores, but the port exposes one queue
	// per core so each worker polls its own queue (Fig 6d; 3 workers).
	SplitterMultiQueue
	// OverlapSingleQueue: two FPs share an output port with a single
	// transmit queue — every enqueue takes the lock (Fig 6e).
	OverlapSingleQueue
	// OverlapMultiQueue: the shared output port exposes per-core transmit
	// queues (Fig 6f).
	OverlapMultiQueue
)

// String names the scenario as in Fig 6.
func (s Scenario) String() string {
	switch s {
	case PipelineSharedCache:
		return "pipeline/shared-L3"
	case PipelineCrossCache:
		return "pipeline/cross-socket"
	case ParallelFP:
		return "parallel"
	case SplitterSingleQueue:
		return "splitter/1-queue"
	case SplitterMultiQueue:
		return "splitter/multi-queue"
	case OverlapSingleQueue:
		return "overlap/1-queue"
	case OverlapMultiQueue:
		return "overlap/multi-queue"
	}
	return "unknown"
}

// ToyScenarios lists the scenarios in presentation order.
func ToyScenarios() []Scenario {
	return []Scenario{
		PipelineSharedCache, PipelineCrossCache, ParallelFP,
		SplitterSingleQueue, SplitterMultiQueue,
		OverlapSingleQueue, OverlapMultiQueue,
	}
}

// ToyRate returns the aggregate 64 B forwarding rate (Gbps) of the
// scenario on spec, and the per-FP rate. Packet size is fixed at 64 B as
// in the paper.
func ToyRate(spec Spec, s Scenario) (totalGbps, perFPGbps float64) {
	const bitsPerPkt = 64 * 8
	coreHz := spec.ClockHz
	ppsFor := func(cyclesPerPkt float64) float64 { return coreHz / cyclesPerPkt }
	gbps := func(pps float64) float64 { return pps * bitsPerPkt / 1e9 }

	switch s {
	case PipelineSharedCache:
		// Two cores split the work; each pays half the handoff sync.
		stage := ToyCycles/2 + SyncCycles
		r := gbps(ppsFor(stage))
		return r, r
	case PipelineCrossCache:
		stage := ToyCycles/2 + SyncCycles + RemoteMissCycles
		r := gbps(ppsFor(stage))
		return r, r
	case ParallelFP:
		r := gbps(ppsFor(ToyCycles))
		return r, r
	case SplitterSingleQueue:
		// The splitter core is the bottleneck: it does the receive half
		// of the path plus a synchronized handoff per packet; worker
		// capacity (2 × the processing half) exceeds what it can feed.
		splitter := ToyCycles/2 + SyncCycles
		r := gbps(ppsFor(splitter))
		return r, r
	case SplitterMultiQueue:
		// Three workers, each with its own queue, each a full parallel FP.
		r := gbps(ppsFor(ToyCycles))
		return 3 * r, r
	case OverlapSingleQueue:
		// Two FPs; each packet pays the shared transmit-queue lock.
		per := gbps(ppsFor(ToyCycles + LockCycles))
		return 2 * per, per
	case OverlapMultiQueue:
		per := gbps(ppsFor(ToyCycles))
		return 2 * per, per
	}
	panic("hw: unknown scenario")
}
