package hw

// Exported per-element cost helpers. The element library charges these to
// the click.Context so that a timed simulation, with full batches, adds up
// to exactly the calibrated totals in load.go:
//
//	fwd path:   ForwardCycles(P) + PollCycles/kp + NICBatchCycles/kn
//	rtr path:   + RouteExtraCycles
//	ipsec path: + IPsecExtraCycles(P)

// PollCycles is the per-poll book-keeping cost (charged once per poll
// operation; kp-packet batches amortize it).
const PollCycles = CPoll

// NICBatchCycles is the per-descriptor-transaction cost (charged once per
// kn-packet DMA batch).
const NICBatchCycles = CNIC

// EmptyPollCycles is the cost of a poll that finds no packets. The paper
// factors these out of per-packet CPU load (§5.3); the simulation charges
// them to idle time, where they only affect latency granularity.
const EmptyPollCycles = 120.0

// ForwardCycles is the application work of minimal forwarding for a
// packet of size bytes (book-keeping excluded).
func ForwardCycles(size int) float64 { return appCycles(Forward, float64(size)) }

// RouteExtraCycles is the additional work IP routing does on top of
// minimal forwarding: checksum verify/update, TTL, DIR-24-8 lookup.
func RouteExtraCycles() float64 { return rtrExtra }

// IPsecExtraCycles is the additional work of AES-128 ESP encryption on
// top of minimal forwarding for a packet of size bytes.
func IPsecExtraCycles(size int) float64 {
	p := float64(size)
	return appCycles(IPsec, p) - appCycles(Forward, p)
}
