package hw

import (
	"fmt"
	"sort"
)

// Result reports a loss-free rate analysis: the sustainable packet rate,
// the equivalent bit rate at the workload's mean packet size, and which
// component binds first — the question §5.3 of the paper answers with
// Figs 9 and 10.
type Result struct {
	PPS        float64
	Gbps       float64
	Bottleneck string
	Load       Load
	// PerComponent maps component name to the rate (pps) at which that
	// component alone would saturate.
	PerComponent map[string]float64
}

// componentRates lists each component's saturation pps for the load.
func componentRates(spec Spec, load Load, activeCores int, meanSize float64) map[string]float64 {
	rates := make(map[string]float64, 8)
	if load.Cycles > 0 {
		rates["cpu"] = float64(activeCores) * spec.ClockHz / load.Cycles
	}
	if spec.SharedBus {
		// Fig 5 architecture: memory and I/O traffic share the FSB.
		if b := load.MemBytes + load.IOBytes; b > 0 {
			rates["fsb"] = spec.FSBEffBps / 8 / b
		}
	} else {
		if load.MemBytes > 0 {
			rates["mem"] = spec.MemEmpBps / 8 / load.MemBytes
		}
		if load.IOBytes > 0 {
			rates["io"] = spec.IOEmpBps / 8 / load.IOBytes
		}
		if load.QPIBytes > 0 && spec.Sockets > 1 {
			rates["qpi"] = spec.QPIEmpBps / 8 / load.QPIBytes
		}
	}
	if load.PCIeBytes > 0 {
		rates["pcie"] = spec.PCIeEmpBps / 8 / load.PCIeBytes
	}
	if meanSize > 0 {
		rates["nic"] = spec.MaxInputBps() / (8 * meanSize)
	}
	return rates
}

// MaxRateForLoad finds the loss-free rate for an arbitrary per-packet
// load at a mean packet size (bytes). activeCores ≤ spec.Cores().
func MaxRateForLoad(spec Spec, load Load, activeCores int, meanSize float64) Result {
	if activeCores <= 0 || activeCores > spec.Cores() {
		activeCores = spec.Cores()
	}
	rates := componentRates(spec, load, activeCores, meanSize)
	// Deterministic tie-breaking: sort component names.
	names := make([]string, 0, len(rates))
	for n := range rates {
		names = append(names, n)
	}
	sort.Strings(names)
	best := Result{PPS: -1, Load: load, PerComponent: rates}
	for _, n := range names {
		if best.PPS < 0 || rates[n] < best.PPS {
			best.PPS = rates[n]
			best.Bottleneck = n
		}
	}
	best.Gbps = best.PPS * meanSize * 8 / 1e9
	return best
}

// MaxRate finds the loss-free forwarding rate for an application at a
// fixed packet size under cfg — the black-box measurement of §5.2.
func MaxRate(spec Spec, a App, size int, cfg Config) Result {
	load := PacketLoad(a, size, cfg, spec)
	return MaxRateForLoad(spec, load, cfg.cores(spec), float64(size))
}

// MaxRateMean is MaxRate for a workload described by its mean packet
// size (all per-packet loads are linear in size, so the mean is exact).
func MaxRateMean(spec Spec, a App, meanSize float64, cfg Config) Result {
	load := PacketLoadMean(a, meanSize, cfg, spec)
	return MaxRateForLoad(spec, load, cfg.cores(spec), meanSize)
}

// PacketLoadMean is PacketLoad at a fractional (mean) packet size.
func PacketLoadMean(a App, meanSize float64, cfg Config, spec Spec) Load {
	// PacketLoad is linear in size; evaluate at the two nearest integers
	// and interpolate to keep a single code path.
	lo := int(meanSize)
	f := meanSize - float64(lo)
	l := PacketLoad(a, lo, cfg, spec)
	if f == 0 {
		return l
	}
	h := PacketLoad(a, lo+1, cfg, spec)
	return l.Scale(1 - f).Add(h.Scale(f))
}

// Utilization reports per-component utilization (0..1+) at an offered
// packet rate; values above 1 mean the component is over capacity. This
// drives the Fig 9/10 style load-vs-bound comparisons.
func Utilization(spec Spec, load Load, activeCores int, meanSize, pps float64) map[string]float64 {
	rates := componentRates(spec, load, activeCores, meanSize)
	u := make(map[string]float64, len(rates))
	for n, r := range rates {
		u[n] = pps / r
	}
	return u
}

// String renders a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%.2f Mpps / %.2f Gbps (bottleneck: %s)", r.PPS/1e6, r.Gbps, r.Bottleneck)
}
