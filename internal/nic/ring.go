// Package nic models the multi-queue 10 Gbps NICs that §4.2 of the
// RouteBricks paper identifies as essential: per-core receive/transmit
// descriptor rings, RSS flow hashing, the MAC-address queue steering RB4
// uses to skip header processing at non-input nodes, and kp/kn batching
// parameters. Rings are single-producer/single-consumer and lock-free,
// which is exactly the discipline the paper's two rules ("one core per
// queue, one core per packet") buy: no queue ever needs a lock.
package nic

import (
	"fmt"
	"sync/atomic"

	"routebricks/internal/pkt"
)

// Ring is a fixed-capacity single-producer/single-consumer packet ring,
// the software image of a NIC descriptor ring. Enqueue and Dequeue may be
// called concurrently from one producer and one consumer goroutine; a
// second concurrent producer (the situation multi-queue NICs exist to
// avoid) is a programming error that corrupts no memory but can drop or
// duplicate slots — tests enforce the SPSC discipline instead.
type Ring struct {
	buf   []*pkt.Packet
	mask  uint64
	_     [48]byte // keep head/tail on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
	drops atomic.Uint64
}

// NewRing creates a ring with capacity rounded up to a power of two
// (minimum 2). Real descriptor rings are power-of-two sized for the same
// index-masking reason.
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Ring{buf: make([]*pkt.Packet, c), mask: uint64(c - 1)}
}

// Cap reports the usable capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len reports the current occupancy (approximate under concurrency).
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Drops reports how many packets Enqueue rejected because the ring was
// full — the loss counter behind every "loss-free rate" measurement.
func (r *Ring) Drops() uint64 { return r.drops.Load() }

// Enqueue appends p; it reports false (and counts a drop) when full.
func (r *Ring) Enqueue(p *pkt.Packet) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		r.drops.Add(1)
		return false
	}
	r.buf[tail&r.mask] = p
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBatch appends as many of b's packets as fit, in slot order,
// with one head/tail exchange — the transmit-side analog of the kn
// descriptor batch. It returns how many were accepted. Each overflowing
// packet counts a drop, but stays in b (compacted to the front) so the
// caller — still its owner — can recycle or recount it; nil slots
// (dropped-but-uncompacted) are skipped for free.
func (r *Ring) EnqueueBatch(b *pkt.Batch) int {
	tail := r.tail.Load()
	room := uint64(len(r.buf)) - (tail - r.head.Load())
	accepted := 0
	for i, p := range b.Packets() {
		if p == nil {
			continue
		}
		if uint64(accepted) >= room {
			r.drops.Add(1)
			continue // leave the packet with the caller
		}
		b.Drop(i)
		r.buf[(tail+uint64(accepted))&r.mask] = p
		accepted++
	}
	if accepted > 0 {
		r.tail.Store(tail + uint64(accepted))
	}
	b.Compact()
	return accepted
}

// Dequeue removes and returns the oldest packet, or nil when empty.
func (r *Ring) Dequeue() *pkt.Packet {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	p := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return p
}

// DequeueBatch fills out with up to len(out) packets and returns the
// count — the kp packets-per-poll operation.
func (r *Ring) DequeueBatch(out []*pkt.Packet) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if avail < n {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(head+i)&r.mask]
		r.buf[(head+i)&r.mask] = nil
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	return int(n)
}

// DequeueBatchInto appends up to b's remaining capacity from the ring
// and returns how many packets moved — DequeueBatch for callers that
// speak pkt.Batch.
func (r *Ring) DequeueBatchInto(b *pkt.Batch) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(b.Cap() - b.Len())
	if avail < n {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		b.Add(r.buf[(head+i)&r.mask])
		r.buf[(head+i)&r.mask] = nil
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	return int(n)
}

// String summarizes occupancy for debugging.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d/%d, drops=%d}", r.Len(), r.Cap(), r.Drops())
}
