package nic

import (
	"net/netip"
	"sync"
	"testing"
	"testing/quick"

	"routebricks/internal/pkt"
)

func mkpkt(i int) *pkt.Packet {
	p := pkt.New(64, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		uint16(i), 80)
	p.SeqNo = uint64(i)
	return p
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		if !r.Enqueue(mkpkt(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(mkpkt(99)) {
		t.Fatal("enqueue into full ring succeeded")
	}
	if r.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", r.Drops())
	}
	for i := 0; i < 8; i++ {
		p := r.Dequeue()
		if p == nil || p.SeqNo != uint64(i) {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if r.Dequeue() != nil {
		t.Fatal("dequeue from empty ring returned a packet")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {512, 512}, {513, 1024}} {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	seq := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Enqueue(mkpkt(seq + i)) {
				t.Fatalf("enqueue failed at round %d", round)
			}
		}
		for i := 0; i < 3; i++ {
			p := r.Dequeue()
			if p.SeqNo != uint64(seq+i) {
				t.Fatalf("round %d: got seq %d, want %d", round, p.SeqNo, seq+i)
			}
		}
		seq += 3
	}
}

func TestRingDequeueBatch(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 10; i++ {
		r.Enqueue(mkpkt(i))
	}
	out := make([]*pkt.Packet, 32)
	n := r.DequeueBatch(out)
	if n != 10 {
		t.Fatalf("batch = %d, want 10", n)
	}
	for i := 0; i < n; i++ {
		if out[i].SeqNo != uint64(i) {
			t.Fatalf("batch order broken at %d", i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
	// Batch smaller than occupancy.
	for i := 0; i < 10; i++ {
		r.Enqueue(mkpkt(100 + i))
	}
	small := make([]*pkt.Packet, 4)
	if n := r.DequeueBatch(small); n != 4 {
		t.Fatalf("small batch = %d, want 4", n)
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
}

func TestRingEnqueueBatchOverflowStaysWithCaller(t *testing.T) {
	r := NewRing(4)
	b := pkt.NewBatch(8)
	for i := 0; i < 7; i++ {
		b.Add(mkpkt(i))
	}
	if n := r.EnqueueBatch(b); n != 4 {
		t.Fatalf("accepted %d, want 4", n)
	}
	if r.Drops() != 3 {
		t.Fatalf("drops = %d, want 3", r.Drops())
	}
	// The three overflowing packets remain with the caller, compacted,
	// in order — the caller still owns them (recycling, recounting).
	if b.Len() != 3 {
		t.Fatalf("left in batch = %d, want 3", b.Len())
	}
	for i, p := range b.Packets() {
		if p.SeqNo != uint64(4+i) {
			t.Fatalf("overflow order broken at %d: SeqNo %d", i, p.SeqNo)
		}
	}
	// Accepted packets come out FIFO in slot order.
	for i := 0; i < 4; i++ {
		if p := r.Dequeue(); p.SeqNo != uint64(i) {
			t.Fatalf("ring order broken at %d: SeqNo %d", i, p.SeqNo)
		}
	}

	// A batch into a fresh ring via DequeueBatchInto round-trips whole.
	r2 := NewRing(8)
	if n := r2.EnqueueBatch(b); n != 3 {
		t.Fatalf("second enqueue = %d, want 3", n)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not emptied: %d", b.Len())
	}
	got := pkt.NewBatch(8)
	if n := r2.DequeueBatchInto(got); n != 3 {
		t.Fatalf("DequeueBatchInto = %d, want 3", n)
	}
	for i, p := range got.Packets() {
		if p.SeqNo != uint64(4+i) {
			t.Fatalf("round-trip order broken at %d", i)
		}
	}
}

// SPSC stress: one producer and one consumer on separate goroutines must
// transfer every packet exactly once, in order. Run with -race.
func TestRingSPSCConcurrent(t *testing.T) {
	r := NewRing(128)
	const total = 200000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.Enqueue(mkpkt(i)) {
				i++
			}
		}
	}()
	var got []uint64
	go func() {
		defer wg.Done()
		for len(got) < total {
			if p := r.Dequeue(); p != nil {
				got = append(got, p.SeqNo)
			}
		}
	}()
	wg.Wait()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, s)
		}
	}
}

func TestPortDefaults(t *testing.T) {
	p := NewPort(3, Config{})
	if p.NumRX() != 1 || p.NumTX() != 1 {
		t.Fatalf("default queues = %d/%d, want 1/1", p.NumRX(), p.NumTX())
	}
	if p.RX(0).Cap() != DefaultQueueSize {
		t.Fatalf("default queue size = %d", p.RX(0).Cap())
	}
}

// RSS must be flow-sticky: all packets of one flow land on one queue.
func TestRSSFlowAffinity(t *testing.T) {
	p := NewPort(0, Config{RXQueues: 8})
	q := -1
	for i := 0; i < 50; i++ {
		pk := pkt.New(64, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.9"), 777, 80)
		idx := p.SteerIndex(pk)
		if q == -1 {
			q = idx
		} else if idx != q {
			t.Fatalf("flow moved from queue %d to %d", q, idx)
		}
	}
}

// RSS must actually spread distinct flows across queues.
func TestRSSSpreads(t *testing.T) {
	p := NewPort(0, Config{RXQueues: 8})
	used := map[int]int{}
	for i := 0; i < 2000; i++ {
		pk := pkt.New(64, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.9"),
			uint16(i), 80)
		used[p.SteerIndex(pk)]++
	}
	if len(used) != 8 {
		t.Fatalf("flows hit %d/8 queues", len(used))
	}
	for q, n := range used {
		if n < 2000/8/3 {
			t.Errorf("queue %d badly underloaded: %d", q, n)
		}
	}
}

// MAC steering: node-encoded MACs map deterministically to queues;
// others fall back to RSS.
func TestMACSteering(t *testing.T) {
	p := NewPort(0, Config{RXQueues: 4, Steering: SteerMAC})
	for node := 0; node < 16; node++ {
		pk := mkpkt(node)
		pk.Ether().SetDst(pkt.NodeMAC(node))
		if got, want := p.SteerIndex(pk), node%4; got != want {
			t.Errorf("node %d steered to %d, want %d", node, got, want)
		}
	}
	plain := mkpkt(1)
	idx := p.SteerIndex(plain)
	if idx < 0 || idx >= 4 {
		t.Fatalf("fallback steer out of range: %d", idx)
	}
}

func TestDeliverCountsDrops(t *testing.T) {
	p := NewPort(0, Config{RXQueues: 1, QueueSize: 2})
	for i := 0; i < 2; i++ {
		if !p.Deliver(mkpkt(i)) {
			t.Fatalf("deliver %d rejected", i)
		}
	}
	if p.Deliver(mkpkt(3)) {
		t.Fatal("deliver into full queue accepted")
	}
	if p.RXDrops() != 1 {
		t.Fatalf("RXDrops = %d, want 1", p.RXDrops())
	}
}

func TestDrainTXRoundRobin(t *testing.T) {
	p := NewPort(0, Config{TXQueues: 2, QueueSize: 8})
	for i := 0; i < 4; i++ {
		p.TX(0).Enqueue(mkpkt(i))
	}
	for i := 10; i < 14; i++ {
		p.TX(1).Enqueue(mkpkt(i))
	}
	out := make([]*pkt.Packet, 16)
	cursor := 0
	n := p.DrainTX(out, &cursor)
	if n != 8 {
		t.Fatalf("drained %d, want 8", n)
	}
	// Within each queue, order preserved.
	var q0, q1 []uint64
	for _, pk := range out[:n] {
		if pk.SeqNo < 10 {
			q0 = append(q0, pk.SeqNo)
		} else {
			q1 = append(q1, pk.SeqNo)
		}
	}
	for i := 1; i < len(q0); i++ {
		if q0[i] < q0[i-1] {
			t.Fatal("q0 order broken")
		}
	}
	for i := 1; i < len(q1); i++ {
		if q1[i] < q1[i-1] {
			t.Fatal("q1 order broken")
		}
	}
}

func TestDrainTXPartial(t *testing.T) {
	p := NewPort(0, Config{TXQueues: 2, QueueSize: 8})
	for i := 0; i < 6; i++ {
		p.TX(i % 2).Enqueue(mkpkt(i))
	}
	out := make([]*pkt.Packet, 4)
	cursor := 0
	if n := p.DrainTX(out, &cursor); n != 4 {
		t.Fatalf("drained %d, want 4", n)
	}
	if got := p.TX(0).Len() + p.TX(1).Len(); got != 2 {
		t.Fatalf("left %d, want 2", got)
	}
}

// Property: a ring never loses or duplicates packets — everything
// enqueued successfully is dequeued exactly once, in order.
func TestPropertyRingConservation(t *testing.T) {
	f := func(ops []bool, capBits uint8) bool {
		r := NewRing(2 + int(capBits)%62)
		next := 0
		var want []int
		var got []int
		for _, enq := range ops {
			if enq {
				if r.Enqueue(mkpkt(next)) {
					want = append(want, next)
				}
				next++
			} else if p := r.Dequeue(); p != nil {
				got = append(got, int(p.SeqNo))
			}
		}
		for p := r.Dequeue(); p != nil; p = r.Dequeue() {
			got = append(got, int(p.SeqNo))
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r := NewRing(512)
	p := mkpkt(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(p)
		r.Dequeue()
	}
}

func BenchmarkRingBatch32(b *testing.B) {
	r := NewRing(512)
	p := mkpkt(0)
	out := make([]*pkt.Packet, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			r.Enqueue(p)
		}
		r.DequeueBatch(out)
	}
}

func BenchmarkSteerRSS(b *testing.B) {
	p := NewPort(0, Config{RXQueues: 8})
	pk := mkpkt(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk.FlowID = 0
		p.SteerIndex(pk)
	}
}
