package nic

import (
	"fmt"

	"routebricks/internal/pkt"
)

// SteeringMode selects how the receive side picks a queue for an
// incoming packet.
type SteeringMode int

const (
	// SteerRSS hashes the 5-tuple, the standard receive-side scaling
	// that keeps same-flow packets on one queue (and therefore one core).
	SteerRSS SteeringMode = iota
	// SteerMAC uses the RB4 trick (§6.1): the destination MAC encodes
	// the VLB output node, so the queue index identifies the output port
	// without any header processing. Packets without a node-encoded MAC
	// fall back to RSS.
	SteerMAC
)

// Port is one physical NIC port with its receive and transmit queue sets.
type Port struct {
	ID       int
	Steering SteeringMode

	rx []*Ring
	tx []*Ring

	// rssSalt perturbs queue selection so different ports spread flows
	// differently, like per-port RSS keys.
	rssSalt uint64
}

// Config sizes a port's queue complement.
type Config struct {
	RXQueues  int
	TXQueues  int
	QueueSize int
	Steering  SteeringMode
}

// DefaultQueueSize matches the 512-descriptor rings common on the
// paper-era Intel 10G parts.
const DefaultQueueSize = 512

// NewPort builds a port. Queue counts default to 1 and size to
// DefaultQueueSize, so the zero Config is the paper's "single queue"
// baseline.
func NewPort(id int, cfg Config) *Port {
	if cfg.RXQueues < 1 {
		cfg.RXQueues = 1
	}
	if cfg.TXQueues < 1 {
		cfg.TXQueues = 1
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = DefaultQueueSize
	}
	p := &Port{ID: id, Steering: cfg.Steering, rssSalt: uint64(id) * 0x9E3779B97F4A7C15}
	for i := 0; i < cfg.RXQueues; i++ {
		p.rx = append(p.rx, NewRing(cfg.QueueSize))
	}
	for i := 0; i < cfg.TXQueues; i++ {
		p.tx = append(p.tx, NewRing(cfg.QueueSize))
	}
	return p
}

// NumRX reports the receive queue count.
func (p *Port) NumRX() int { return len(p.rx) }

// NumTX reports the transmit queue count.
func (p *Port) NumTX() int { return len(p.tx) }

// RX returns receive queue i.
func (p *Port) RX(i int) *Ring { return p.rx[i] }

// TX returns transmit queue i.
func (p *Port) TX(i int) *Ring { return p.tx[i] }

// SteerIndex computes the receive queue index for a packet without
// enqueuing it.
func (p *Port) SteerIndex(pk *pkt.Packet) int {
	n := uint64(len(p.rx))
	if p.Steering == SteerMAC {
		if dst := pk.Ether().Dst(); dst.IsNodeMAC() {
			return int(uint64(dst.Node()) % n)
		}
	}
	return int((pk.FlowHash() ^ p.rssSalt) % n)
}

// Deliver is the wire-side receive path: steer to a queue and enqueue.
// It reports whether the packet was accepted.
func (p *Port) Deliver(pk *pkt.Packet) bool {
	return p.rx[p.SteerIndex(pk)].Enqueue(pk)
}

// RXDrops sums drops across receive queues.
func (p *Port) RXDrops() uint64 {
	var d uint64
	for _, r := range p.rx {
		d += r.Drops()
	}
	return d
}

// TXDrops sums drops across transmit queues.
func (p *Port) TXDrops() uint64 {
	var d uint64
	for _, r := range p.tx {
		d += r.Drops()
	}
	return d
}

// DrainTX collects up to max packets from the transmit queues, visiting
// them round-robin starting at *cursor (which is advanced). This is the
// NIC-side DMA engine's view; kn batching is applied by the caller that
// schedules DMA transactions.
func (p *Port) DrainTX(out []*pkt.Packet, cursor *int) int {
	n := 0
	for range p.tx {
		q := p.tx[*cursor%len(p.tx)]
		*cursor++
		n += q.DequeueBatch(out[n:])
		if n == len(out) {
			break
		}
	}
	return n
}

// String identifies the port.
func (p *Port) String() string {
	return fmt.Sprintf("port%d{rx=%d tx=%d}", p.ID, len(p.rx), len(p.tx))
}
