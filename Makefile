# Developer entry points. CI runs the same targets.

GO      ?= go
# benchstat wants repeated samples: `make bench COUNT=10 | benchstat -`.
COUNT   ?= 6
BENCH   ?= .

.PHONY: all build test vet bench bench-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# benchstat-friendly output: fixed benchtime, repeated counts, no tests.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) .

# Quick smoke for CI: every benchmark once, 100 iterations max.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDispatch|BenchmarkServerModel' -benchmem -benchtime 100x .
