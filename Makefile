# Developer entry points. CI runs the same targets.

GO      ?= go
# benchstat wants repeated samples: `make bench COUNT=10 | benchstat -`.
COUNT   ?= 6
BENCH   ?= .

.PHONY: all build test vet bench bench-smoke bench-json mesh-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# End-to-end gate for the multi-process mesh: build rbrouter + rbmesh,
# boot a 3-member cluster, kill one member mid-traffic, assert the
# survivors converge and deliver post-failure traffic without loss,
# then restart it and assert the rejoin. Drives only the public HTTP
# surfaces — what an operator would use.
mesh-smoke:
	$(GO) run ./internal/tools/meshsmoke

# benchstat-friendly output: fixed benchtime, repeated counts, no tests.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) .

# Quick smoke for CI: the headline benchmarks once, 100 iterations max,
# with the -benchmem output kept on disk (CI uploads it as an artifact).
# Redirect-then-cat rather than tee so a benchmark failure fails the
# target (a pipe would return tee's status, not go test's).
BENCH_OUT ?= bench-smoke.txt
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDispatch|BenchmarkServerModel|BenchmarkPlacement|BenchmarkHandoff|BenchmarkPool|BenchmarkChurn|BenchmarkSteer|BenchmarkWireIO' -benchmem -benchtime 100x . > $(BENCH_OUT) 2>&1; \
	status=$$?; cat $(BENCH_OUT); exit $$status

# Machine-readable perf trajectory: the BenchmarkPlacement sweep and
# the BenchmarkChurn million-route live-FIB runs, plus the Placement:
# Auto calibration scores under pinned cost-model inputs, as one JSON
# document. CI regenerates it per commit; the checked-in copy is both
# the trajectory seed and the decision-diff baseline — benchjson fails
# this target when Auto's decided placement changes for inputs that did
# not (commit a regenerated file to accept an intentional change), when
# the parallel Mpps curve develops a scaling cliff (drops beyond
# tolerance as cores double), or when forwarding under live route churn
# falls beyond tolerance below the idle-control-plane run. The sweeps
# run steady-state iteration counts with repeats — benchjson keeps the
# best run per benchmark — because a 100-iteration sweep measures
# startup, and a single run on shared hardware measures the neighbors.
# Churn runs deeper than the placement sweep so several paced FIB
# commits land inside each timed window. The wire sweep (BenchmarkWireIO:
# mmsg vs per-packet fallback × batch sizes over loopback, plus the
# time-interleaved ratio runs) feeds the benchjson -wire-tol gate —
# the interleaved mmsg-over-fallback speedup (xfall) at batch 32 must
# hold at least WIRE_TOL.
BENCH_JSON ?= BENCH_placement.json
PLACEMENT_OUT ?= placement-bench.txt
BENCH_ITERS ?= 200000x
CHURN_ITERS ?= 1000000x
WIRE_SECS ?= 1s
BENCH_REPEAT ?= 3
WIRE_TOL ?= 1.0
bench-json:
	$(GO) test -run '^$$' -bench BenchmarkPlacement -benchmem -benchtime $(BENCH_ITERS) -count $(BENCH_REPEAT) . > $(PLACEMENT_OUT) 2>&1; \
	status=$$?; [ $$status -eq 0 ] || { cat $(PLACEMENT_OUT); exit $$status; }
	$(GO) test -run '^$$' -bench BenchmarkChurn -benchmem -benchtime $(CHURN_ITERS) -count $(BENCH_REPEAT) . >> $(PLACEMENT_OUT) 2>&1; \
	status=$$?; [ $$status -eq 0 ] || { cat $(PLACEMENT_OUT); exit $$status; }
	$(GO) test -run '^$$' -bench BenchmarkWireIO -benchmem -benchtime $(WIRE_SECS) -count $(BENCH_REPEAT) . >> $(PLACEMENT_OUT) 2>&1; \
	status=$$?; cat $(PLACEMENT_OUT); [ $$status -eq 0 ] || exit $$status
	$(GO) run ./internal/tools/benchjson -bench $(PLACEMENT_OUT) -baseline $(BENCH_JSON) -out $(BENCH_JSON) -wire-tol $(WIRE_TOL)
	@echo wrote $(BENCH_JSON)
