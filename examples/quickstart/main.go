// Quickstart: build the RB4 router (4 Nehalem servers, full mesh, Direct
// VLB with flowlet reordering avoidance), offer it an Abilene-like
// workload, and read back delivery, latency, and reordering statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"routebricks"
)

func main() {
	rb4, err := routebricks.RB4()
	if err != nil {
		log.Fatal(err)
	}

	w := routebricks.Workload{
		OfferedBpsPerNode: 2e9, // 2 Gbps per external port
		Sizes:             routebricks.AbileneMix(),
		ExcludeSelf:       true, // no hairpin traffic
		Duration:          20 * routebricks.Millisecond,
		Seed:              1,
	}
	injected := w.Apply(rb4)

	rb4.Run(w.Duration + routebricks.Millisecond)
	rb4.Drain(20 * routebricks.Millisecond)

	_, delivered, rxDrops, txDrops, ttl := rb4.Totals()
	fmt.Printf("RB4: injected %d packets over %v of virtual time\n", injected, w.Duration)
	fmt.Printf("  delivered: %d (rx drops %d, tx drops %d, ttl drops %d)\n",
		delivered, rxDrops, txDrops, ttl)
	fmt.Printf("  latency:   mean %.1f µs, p50 %.1f µs, p99 %.1f µs\n",
		rb4.Latency.Mean(), rb4.Latency.Quantile(0.5), rb4.Latency.Quantile(0.99))
	fmt.Printf("  paths:     %d direct (2 nodes), %d load-balanced (3 nodes)\n",
		rb4.Hops[2], rb4.Hops[3])
	fmt.Printf("  reorder:   %s\n", rb4.Meter)

	direct, sticky, spread, newFl, overflow := rb4.BalancerStats()
	fmt.Printf("  VLB:       %d direct-quota, %d flowlet-sticky, %d spread, %d flowlets, %d migrations\n",
		direct, sticky, spread, newFl, overflow)
}
