// clickfile: the programmability claim, demonstrated end to end. The
// IP-router datapath is declared in the Click configuration language
// (§1: the router "is fully programmable using the familiar Click/Linux
// environment") and handed to routebricks.Load — with Placement: Auto,
// so the §4.2 core allocation is picked by measured calibration rather
// than a flag. The route table is a live FIB bound through Options.FIB:
// the Click name `fib` resolves to it on every chain, and routes can be
// added or withdrawn while the cores forward. After the run, the
// example exercises the rest of the live control plane: the unified
// Snapshot (with Delta rates), a zero-downtime Reload of the same
// program, and a live route commit through Pipeline.Routes().
//
//	go run ./examples/clickfile
package main

import (
	"fmt"
	"log"
	"net/netip"
	"runtime"

	"routebricks"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/trafficgen"
)

const config = `
	// IP router, Click syntax. 'fib' and 'sink' are prebound per chain.
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	hops  :: HopSwitch(4);
	good  :: Counter;
	bad   :: Discard;

	check[0] -> rt;
	check[1] -> bad;
	rt[0]    -> ttl;
	rt[1]    -> bad;
	ttl[0]   -> hops;
	ttl[1]   -> bad;

	hops[0] -> good;
	hops[1] -> good;
	hops[2] -> good;
	hops[3] -> good;
	good    -> sink;
`

func main() {
	fib, err := routebricks.NewFIB(lpm.RandomTable(64*1024, 4, 9, true)...)
	if err != nil {
		log.Fatal(err)
	}

	const cores = 2
	opts := routebricks.Options{
		Cores:     cores,
		Placement: routebricks.Auto, // calibrate both §4.2 allocations, pick the winner
		FIB:       fib,              // binds the Click name `fib` on every chain
		Prebound: func(chain int) map[string]routebricks.Element {
			return map[string]routebricks.Element{
				"sink": &elements.Discard{},
			}
		},
	}
	pipe, err := routebricks.Load(config, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed graph:")
	fmt.Print(pipe.Router(0).Graph())
	fmt.Printf("\nplacement (decided by calibration):\n%s\n", pipe.Describe())

	if err := pipe.Start(); err != nil {
		log.Fatal(err)
	}
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(64), RandomDst: true})
	const n = 100000
	before := pipe.Snapshot()
	for i := 0; i < n; i++ {
		p := src.Next()
		for !pipe.Push(i%pipe.Chains(), p) {
			runtime.Gosched()
		}
	}
	total := func() (routed, drained uint64) {
		for chain := 0; chain < pipe.Chains(); chain++ {
			routed += pipe.Element(chain, "good").(*elements.Counter).Packets()
			drained += pipe.Element(chain, "sink").(*elements.Discard).Count()
		}
		return
	}
	for {
		routed, drained := total()
		var dropped uint64
		for chain := 0; chain < pipe.Chains(); chain++ {
			dropped += pipe.Element(chain, "bad").(*elements.Discard).Count()
		}
		if routed+dropped >= n && drained+dropped >= n {
			break
		}
		runtime.Gosched()
	}
	routed, drained := total()

	// One typed snapshot carries everything the run produced; Delta
	// against the pre-run snapshot isolates this run's counters.
	delta := pipe.Snapshot().Delta(before)
	fmt.Printf("\nrouted %d of %d packets through the loaded pipeline on %d cores (sinks drained %d)\n",
		routed, n, cores, drained)
	fmt.Printf("snapshot: plan=%s gen=%d packets=%d queued=%d drops=%d\n",
		delta.Plan, delta.Generation, delta.TotalPackets(), delta.Queued, delta.Drops)

	// Hot-swap the same program while the cores run: the drain barrier
	// empties the rings, the new plan installs, and the generation
	// counter records the swap. Prebound resources carry over.
	if err := pipe.Reload(config, opts); err != nil {
		log.Fatal(err)
	}
	after := pipe.Snapshot()
	fmt.Printf("reloaded live: gen=%d plan=%s packets=%d (fresh counters)\n",
		after.Generation, after.Plan, after.TotalPackets())

	// Route churn without stopping anything: one batched commit through
	// the admin handle, visible to every chain's next batch. The FIB
	// generation is a pipeline gauge, reported alongside plan identity.
	admin := pipe.Routes()
	gen, err := admin.Update([]routebricks.Route{
		{Prefix: netip.MustParsePrefix("203.0.113.0/24"), NextHop: 2},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live FIB: committed generation %d, %d routes (snapshot gauge gen=%d)\n",
		gen, admin.Len(), pipe.Snapshot().FIBGeneration)
	pipe.Stop()
}
