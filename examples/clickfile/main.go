// clickfile: the programmability claim, demonstrated. The same IP-router
// datapath as examples/iprouter, but declared in the Click configuration
// language (§1: the router "is fully programmable using the familiar
// Click/Linux environment") and instantiated by the parser against the
// standard element registry, with the route table passed in as a
// prebound instance.
//
//	go run ./examples/clickfile
package main

import (
	"fmt"
	"log"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/trafficgen"
)

const config = `
	// IP router, Click syntax. 'fib' is prebound by the host program.
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	hops  :: HopSwitch(4);
	good  :: Counter;
	bad   :: Discard;

	check[0] -> rt;
	check[1] -> bad;
	rt[0]    -> ttl;
	rt[1]    -> bad;
	ttl[0]   -> hops;
	ttl[1]   -> bad;

	hops[0] -> good;
	hops[1] -> good;
	hops[2] -> good;
	hops[3] -> good;
	good    -> sink;
`

func main() {
	table := lpm.NewDir248()
	if err := lpm.Build(table, lpm.RandomTable(64*1024, 4, 9, true)); err != nil {
		log.Fatal(err)
	}
	table.Freeze()

	prebound := map[string]click.Element{
		"fib":  elements.NewLPMLookup(table),
		"sink": &elements.Discard{},
	}
	router, err := click.ParseConfig(config, elements.StandardRegistry(), prebound)
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed graph:")
	fmt.Print(router.Graph())

	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(64), RandomDst: true})
	entry := router.Get("check")
	ctx := &click.Context{}
	const n = 100000
	for i := 0; i < n; i++ {
		entry.Push(ctx, 0, src.Next())
	}
	good := router.Get("good").(*elements.Counter)
	sink := prebound["sink"].(*elements.Discard)
	fmt.Printf("\nrouted %d of %d packets through the parsed pipeline (sink drained %d)\n",
		good.Packets(), n, sink.Count())
}
