// clickfile: the programmability claim, demonstrated end to end. The
// IP-router datapath is declared in the Click configuration language
// (§1: the router "is fully programmable using the familiar Click/Linux
// environment") and handed to routebricks.Load, which parses it against
// the standard element registry, stamps one independent copy of the
// graph per core, and runs it as a multi-core Parallel placement — the
// route table passed in as a per-chain prebound instance.
//
//	go run ./examples/clickfile
package main

import (
	"fmt"
	"log"
	"runtime"

	"routebricks"
	"routebricks/internal/elements"
	"routebricks/internal/lpm"
	"routebricks/internal/trafficgen"
)

const config = `
	// IP router, Click syntax. 'fib' and 'sink' are prebound per chain.
	check :: CheckIPHeader;
	rt    :: LPMLookup(fib);
	ttl   :: DecIPTTL;
	hops  :: HopSwitch(4);
	good  :: Counter;
	bad   :: Discard;

	check[0] -> rt;
	check[1] -> bad;
	rt[0]    -> ttl;
	rt[1]    -> bad;
	ttl[0]   -> hops;
	ttl[1]   -> bad;

	hops[0] -> good;
	hops[1] -> good;
	hops[2] -> good;
	hops[3] -> good;
	good    -> sink;
`

func main() {
	table := lpm.NewDir248()
	if err := lpm.Build(table, lpm.RandomTable(64*1024, 4, 9, true)); err != nil {
		log.Fatal(err)
	}
	table.Freeze()

	const cores = 2
	pipe, err := routebricks.Load(config, routebricks.Options{
		Cores: cores,
		Prebound: func(chain int) map[string]routebricks.Element {
			return map[string]routebricks.Element{
				"fib":  elements.NewLPMLookup(table),
				"sink": &elements.Discard{},
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed graph:")
	fmt.Print(pipe.Router(0).Graph())
	fmt.Printf("\nplacement:\n%s\n", pipe.Describe())

	if err := pipe.Start(); err != nil {
		log.Fatal(err)
	}
	src := trafficgen.New(trafficgen.Config{Seed: 1, Sizes: trafficgen.Fixed(64), RandomDst: true})
	const n = 100000
	for i := 0; i < n; i++ {
		p := src.Next()
		for !pipe.Push(i%cores, p) {
			runtime.Gosched()
		}
	}
	total := func() (routed, drained uint64) {
		for chain := 0; chain < pipe.Chains(); chain++ {
			routed += pipe.Element(chain, "good").(*elements.Counter).Packets()
			drained += pipe.Element(chain, "sink").(*elements.Discard).Count()
		}
		return
	}
	for {
		routed, drained := total()
		var dropped uint64
		for chain := 0; chain < pipe.Chains(); chain++ {
			dropped += pipe.Element(chain, "bad").(*elements.Discard).Count()
		}
		if routed+dropped >= n && drained+dropped >= n {
			break
		}
		runtime.Gosched()
	}
	pipe.Stop()

	routed, drained := total()
	fmt.Printf("\nrouted %d of %d packets through the loaded pipeline on %d cores (sinks drained %d)\n",
		routed, n, cores, drained)
}
