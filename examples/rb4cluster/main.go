// rb4cluster: the §6.2 reordering experiment as a runnable program. It
// forces an Abilene-like trace between one input and one output port of
// RB4 at a rate no single path can carry, and measures the reordered-
// sequence fraction with and without the flowlet extension — the 0.15%
// vs 5.5% comparison of the paper.
//
//	go run ./examples/rb4cluster
//	go run ./examples/rb4cluster -rate 9 -delta 10ms
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"routebricks"
	"routebricks/internal/sim"
)

func main() {
	var (
		rateGbps = flag.Float64("rate", 8, "offered load on the input port (Gbps)")
		delta    = flag.Duration("delta", 100*time.Millisecond, "flowlet timeout δ")
		durMS    = flag.Int("dur", 25, "virtual duration (ms)")
	)
	flag.Parse()

	run := func(flowlets bool) *routebricks.Cluster {
		cfg := routebricks.RB4Config()
		cfg.Seed = 42
		cfg.Flowlets = flowlets
		cfg.Delta = sim.Time(*delta)
		cfg.FitCapBps = 3e9 // per-path share of the single-pair load
		c, err := routebricks.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		w := routebricks.Workload{
			OfferedBpsPerNode: *rateGbps * 1e9,
			Sizes:             routebricks.AbileneMix(),
			InputNodes:        []int{0},
			OutputNodes:       []int{3},
			Duration:          routebricks.Time(*durMS) * routebricks.Millisecond,
			Seed:              42,
		}
		w.Apply(c)
		c.Run(w.Duration + routebricks.Millisecond)
		c.Drain(20 * routebricks.Millisecond)
		return c
	}

	fmt.Printf("RB4 single-pair experiment: node 0 → node 3 at %g Gbps, δ=%v\n\n", *rateGbps, *delta)
	for _, mode := range []struct {
		flowlets bool
		label    string
		paper    string
	}{
		{true, "Direct VLB + flowlet avoidance", "0.15%"},
		{false, "Direct VLB, per-packet balancing", "5.5%"},
	} {
		c := run(mode.flowlets)
		injected, delivered, rxd, txd, _ := c.Totals()
		fmt.Printf("%s:\n", mode.label)
		fmt.Printf("  delivered %d/%d (drops rx=%d tx=%d)\n", delivered, injected, rxd, txd)
		fmt.Printf("  reordering: %s (paper: %s)\n", c.Meter, mode.paper)
		fmt.Printf("  latency: mean %.1f µs, p99 %.1f µs\n",
			c.Latency.Mean(), c.Latency.Quantile(0.99))
		direct, sticky, spread, newFl, overflow := c.BalancerStats()
		fmt.Printf("  VLB: direct=%d sticky=%d spread=%d flowlets=%d migrations=%d\n\n",
			direct, sticky, spread, newFl, overflow)
	}
}
