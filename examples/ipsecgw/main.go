// ipsecgw: the paper's IPsec workload as a working VPN gateway pair —
// every packet AES-128-CBC encrypted into an ESP tunnel by one gateway
// element and decrypted/verified by the other. The crypto is the
// from-scratch implementation in internal/ipsec (FIPS 197 validated).
//
//	go run ./examples/ipsecgw
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/netip"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/hw"
	"routebricks/internal/ipsec"
	"routebricks/internal/pkt"
	"routebricks/internal/trafficgen"
)

func main() {
	key := []byte("routebricks-2009")
	enc0, err := ipsec.NewTunnel(0x5252, key)
	if err != nil {
		log.Fatal(err)
	}
	dec0, err := ipsec.NewTunnel(0x5252, key)
	if err != nil {
		log.Fatal(err)
	}

	encap := elements.NewESPEncap(enc0,
		netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2"))
	decap := elements.NewESPDecap(dec0)
	recovered := &elements.Counter{}
	errors := &elements.Discard{}
	sink := &elements.Discard{}

	r := click.NewRouter()
	r.MustAdd("encap", encap)
	r.MustAdd("decap", decap)
	r.MustAdd("recovered", recovered)
	r.MustAdd("errors", errors)
	r.MustAdd("sink", sink)
	r.MustConnect("encap", 0, "decap", 0)
	r.MustConnect("encap", 1, "errors", 0)
	r.MustConnect("decap", 0, "recovered", 0)
	r.MustConnect("decap", 1, "errors", 0)
	r.MustConnect("recovered", 0, "sink", 0)
	if err := r.Check(); err != nil {
		log.Fatal(err)
	}

	// Verify end-to-end payload integrity on one packet first: what
	// comes out of the decapsulator must be byte-identical to what went
	// into the encapsulator.
	probeSrc := trafficgen.New(trafficgen.Config{Seed: 4, Sizes: trafficgen.Fixed(512)})
	probe := probeSrc.Next()
	want := append([]byte(nil), probe.Data...)
	var got []byte
	check := recovered
	check.Reset()
	decap.SetOutput(0, func(ctx *click.Context, p *pkt.Packet) {
		got = append([]byte(nil), p.Data...)
		check.Push(ctx, 0, p)
	})
	encap.Push(&click.Context{}, 0, probe)
	if !bytes.Equal(got[pkt.EtherHdrLen:], want[pkt.EtherHdrLen:]) {
		log.Fatal("tunnel corrupted the inner packet")
	}
	check.Reset()

	// Drive the Abilene mix through the tunnel.
	const n = 20000
	src := trafficgen.New(trafficgen.Config{Seed: 5, Sizes: trafficgen.AbileneMix()})
	ctx := &click.Context{}
	var bytesIn uint64
	start := time.Now()
	for i := 0; i < n; i++ {
		p := src.Next()
		bytesIn += uint64(p.Len())
		encap.Push(ctx, 0, p)
	}
	elapsed := time.Since(start)

	if recovered.Packets() != n {
		log.Fatalf("recovered %d of %d packets (errors: decap=%d)",
			recovered.Packets(), n, decap.Errors())
	}
	fmt.Printf("ESP tunnel: %d packets encrypted+decrypted, 0 failures\n", n)
	fmt.Printf("host throughput: %.1f MB/s through AES-128-CBC both ways\n",
		float64(bytesIn)/elapsed.Seconds()/1e6)

	// The modeled 2009 gateway rates (Fig 8: 1.4 Gbps @64 B, 4.45 Abilene).
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	fmt.Printf("modeled 2009 Nehalem gateway: %s (64 B), %s (Abilene)\n",
		hw.MaxRate(spec, hw.IPsec, 64, cfg),
		hw.MaxRateMean(spec, hw.IPsec, trafficgen.AbileneMix().Mean(), cfg))
	fmt.Println("(the paper notes routers of the era used IPsec accelerators to reach 2.5-10 Gbps)")
}
