// iprouter: a single-server IP router built from the element library —
// CheckIPHeader → LPMLookup (DIR-24-8 over 256K routes) → DecIPTTL →
// HopSwitch — exercised functionally on this host, with the modeled
// Nehalem forwarding rates printed alongside (the Fig 8 numbers).
//
//	go run ./examples/iprouter
package main

import (
	"fmt"
	"log"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/pkt"
	"routebricks/internal/trafficgen"
)

func main() {
	// The paper's routing table: 256K prefixes, random next hops.
	const ports = 16
	table := lpm.NewDir248()
	if err := lpm.Build(table, lpm.RandomTable(256*1024, ports, 7, true)); err != nil {
		log.Fatal(err)
	}
	table.Freeze()
	fmt.Printf("FIB: %s, %.1f MB lookup arrays\n", table, float64(table.MemoryFootprint())/1e6)

	// Element pipeline.
	router := click.NewRouter()
	check := &elements.CheckIPHeader{}
	look := elements.NewLPMLookup(table)
	ttl := &elements.DecIPTTL{}
	hops := elements.NewHopSwitch(ports)
	bad := &elements.Discard{}
	outs := make([]*elements.Counter, ports)
	router.MustAdd("check", check)
	router.MustAdd("lookup", look)
	router.MustAdd("ttl", ttl)
	router.MustAdd("hops", hops)
	router.MustAdd("bad", bad)
	router.MustConnect("check", 0, "lookup", 0)
	router.MustConnect("check", 1, "bad", 0)
	router.MustConnect("lookup", 0, "ttl", 0)
	router.MustConnect("lookup", 1, "bad", 0)
	router.MustConnect("ttl", 0, "hops", 0)
	router.MustConnect("ttl", 1, "bad", 0)
	sinkAll := &elements.Discard{}
	router.MustAdd("sink", sinkAll)
	for i := 0; i < ports; i++ {
		outs[i] = &elements.Counter{}
		name := fmt.Sprintf("out%d", i)
		router.MustAdd(name, outs[i])
		router.MustConnect("hops", i, name, 0)
		router.MustConnect(name, 0, "sink", 0)
	}
	if err := router.Check(); err != nil {
		log.Fatal(err)
	}

	// Push random-destination 64 B packets through the real pipeline.
	const n = 500000
	src := trafficgen.New(trafficgen.Config{Seed: 3, Sizes: trafficgen.Fixed(64), RandomDst: true})
	packets := src.Batch(n)
	ctx := &click.Context{}
	start := time.Now()
	for _, p := range packets {
		check.Push(ctx, 0, p)
	}
	elapsed := time.Since(start)
	ctx.TakeCycles()

	routed := uint64(0)
	for _, c := range outs {
		routed += c.Packets()
	}
	fmt.Printf("host run: %d packets in %v → %.2f Mpps on this machine\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds()/1e6)
	fmt.Printf("  routed %d, dropped %d (TTL %d, lookup misses %d)\n",
		routed, bad.Count(), ttl.Expired(), look.Misses())

	// The modeled Nehalem rates for this application (Fig 8).
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	r64 := hw.MaxRate(spec, hw.Route, 64, cfg)
	rAb := hw.MaxRateMean(spec, hw.Route, trafficgen.AbileneMix().Mean(), cfg)
	fmt.Printf("modeled 2009 Nehalem: %s (64 B), %s (Abilene)\n", r64, rAb)
	_ = pkt.MinSize
}
