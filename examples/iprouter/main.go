// iprouter: a single-server IP router built from the element library —
// CheckIPHeader → LPMLookup (DIR-24-8 over 256K routes) → DecIPTTL →
// HopSwitch over 16 ports — described as a code-built click.Program
// (the same graph-first abstraction Click-text configs load through)
// and materialized by the placement planner as a multi-core Parallel
// plan, exercised functionally on this host with the modeled Nehalem
// forwarding rates printed alongside (the Fig 8 numbers).
//
//	go run ./examples/iprouter
package main

import (
	"fmt"
	"log"
	"time"

	"routebricks/internal/click"
	"routebricks/internal/elements"
	"routebricks/internal/hw"
	"routebricks/internal/lpm"
	"routebricks/internal/trafficgen"
)

func main() {
	// The paper's routing table: 256K prefixes, random next hops, held in
	// a live table (one seed commit) so the lookup element runs the same
	// snapshot-per-batch path a churning deployment uses.
	const ports = 16
	const cores = 2
	table, err := lpm.NewLiveTable(lpm.RandomTable(256*1024, ports, 7, true)...)
	if err != nil {
		log.Fatal(err)
	}
	snap := table.Load()
	fmt.Printf("FIB: %s (generation %d), %.1f MB lookup arrays\n",
		snap, table.Generation(), float64(snap.MemoryFootprint())/1e6)

	// The element graph, as a Program: Build stamps out one independent
	// copy per chain, so the parallel plan below gives every core its
	// own pipeline (the paper's "one core per packet" rule).
	prog := click.NewProgram(func(chain int) (*click.Router, error) {
		router := click.NewRouter()
		router.MustAdd("check", &elements.CheckIPHeader{})
		router.MustAdd("lookup", elements.NewLPMLookup(table))
		router.MustAdd("ttl", &elements.DecIPTTL{})
		router.MustAdd("hops", elements.NewHopSwitch(ports))
		router.MustAdd("bad", &elements.Discard{})
		router.MustAdd("sink", &elements.Discard{})
		router.MustConnect("check", 0, "lookup", 0)
		router.MustConnect("check", 1, "bad", 0)
		router.MustConnect("lookup", 0, "ttl", 0)
		router.MustConnect("lookup", 1, "bad", 0)
		router.MustConnect("ttl", 0, "hops", 0)
		router.MustConnect("ttl", 1, "bad", 0)
		for i := 0; i < ports; i++ {
			name := fmt.Sprintf("out%d", i)
			router.MustAdd(name, &elements.Counter{})
			router.MustConnect("hops", i, name, 0)
			router.MustConnect(name, 0, "sink", 0)
		}
		if err := router.Check(); err != nil {
			return nil, err
		}
		return router, nil
	})

	plan, err := click.NewPlan(click.PlanConfig{
		Kind: click.Parallel, Cores: cores, Program: prog, KP: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())

	// Push random-destination 64 B packets through the planned pipeline,
	// driving the cores deterministically on this goroutine.
	const n = 500000
	src := trafficgen.New(trafficgen.Config{Seed: 3, Sizes: trafficgen.Fixed(64), RandomDst: true})
	packets := src.Batch(n)
	ctx := &click.Context{}
	start := time.Now()
	for fed := 0; fed < n; {
		for c := 0; c < plan.Chains() && fed < n; c++ {
			if plan.Input(c).Push(packets[fed]) {
				fed++
			}
		}
		for core := 0; core < plan.Cores(); core++ {
			plan.RunStep(core, ctx)
		}
	}
	for plan.Queued() > 0 {
		for core := 0; core < plan.Cores(); core++ {
			plan.RunStep(core, ctx)
		}
	}
	elapsed := time.Since(start)
	ctx.TakeCycles()

	var routed, dropped, expired, misses uint64
	for chain := 0; chain < plan.Chains(); chain++ {
		router := plan.Router(chain)
		for i := 0; i < ports; i++ {
			routed += router.Get(fmt.Sprintf("out%d", i)).(*elements.Counter).Packets()
		}
		dropped += router.Get("bad").(*elements.Discard).Count()
		expired += router.Get("ttl").(*elements.DecIPTTL).Expired()
		misses += router.Get("lookup").(*elements.LPMLookup).Misses()
	}
	fmt.Printf("host run: %d packets in %v → %.2f Mpps on this machine\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds()/1e6)
	fmt.Printf("  routed %d, dropped %d (TTL %d, lookup misses %d)\n",
		routed, dropped, expired, misses)

	// The modeled Nehalem rates for this application (Fig 8).
	spec := hw.Nehalem()
	cfg := hw.DefaultConfig()
	r64 := hw.MaxRate(spec, hw.Route, 64, cfg)
	rAb := hw.MaxRateMean(spec, hw.Route, trafficgen.AbileneMix().Mean(), cfg)
	fmt.Printf("modeled 2009 Nehalem: %s (64 B), %s (Abilene)\n", r64, rAb)
}
