package routebricks

import (
	"net/netip"

	"routebricks/internal/lpm"
)

// Route pairs an IPv4 prefix with a next-hop index, for bulk FIB loads
// and route listings.
type Route = lpm.Route

// NoRoute is the next-hop value reported when no prefix covers an
// address.
const NoRoute = lpm.NoRoute

// RouteAdmin is the control-plane handle on a live FIB: an RCU-style
// DIR-24-8 table whose updates never stall forwarding. Writers batch
// adds and withdraws into single commits; forwarding cores keep reading
// the previous complete snapshot until the next one is published
// atomically, so no lookup ever observes a partial table. All methods
// are safe for concurrent use from any goroutine, including while the
// pipeline forwards at full rate.
//
// Construct one with NewFIB, hand it to Load via Options.FIB (the Click
// text's `fib` name binds to it automatically), and retrieve it later
// with Pipeline.Routes(). Callers never touch internal/lpm.
type RouteAdmin struct {
	table *lpm.LiveTable
}

// NewFIB builds a live FIB, optionally preloaded with routes in one
// commit. The error, if any, is the first rejected route (non-IPv4
// prefix or out-of-range next hop).
func NewFIB(routes ...Route) (*RouteAdmin, error) {
	lt, err := lpm.NewLiveTable(routes...)
	if err != nil {
		return nil, err
	}
	return &RouteAdmin{table: lt}, nil
}

// Add installs or replaces one route and commits immediately. Bursts
// should prefer Update, which commits the whole batch in one table
// build.
func (a *RouteAdmin) Add(prefix netip.Prefix, nextHop int) error {
	return a.table.Insert(prefix, nextHop)
}

// Withdraw removes one route and commits immediately. Withdrawing a
// route that is not installed is a no-op.
func (a *RouteAdmin) Withdraw(prefix netip.Prefix) error {
	return a.table.Withdraw(prefix)
}

// Update applies a batch of adds and withdraws as one commit — a burst
// of updates costs one table build, not one per route — and returns the
// FIB generation now visible to forwarding. The batch is validated
// up front; on error nothing is applied.
func (a *RouteAdmin) Update(adds []Route, withdraws []netip.Prefix) (uint64, error) {
	return a.table.Update(adds, withdraws)
}

// List returns the installed routes sorted by address then prefix
// length.
func (a *RouteAdmin) List() []Route { return a.table.Routes() }

// Len reports the number of installed routes.
func (a *RouteAdmin) Len() int { return a.table.Len() }

// Generation reports the number of committed FIB updates. It increases
// by exactly one per effective commit and never decreases; Snapshot
// reports the same value, so observers can tell which FIB a stats view
// saw.
func (a *RouteAdmin) Generation() uint64 { return a.table.Generation() }

// Lookup resolves one address against the current FIB snapshot — the
// admin-API mirror of what the datapath's LPMLookup element does per
// packet. It returns NoRoute when nothing covers addr or addr is not
// IPv4.
func (a *RouteAdmin) Lookup(addr netip.Addr) int {
	if !addr.Is4() {
		return NoRoute
	}
	b := addr.As4()
	dst := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return a.table.Lookup(dst)
}

// engine exposes the underlying live table to the Load plumbing (the
// prebound `fib` element reads through it per batch).
func (a *RouteAdmin) engine() *lpm.LiveTable { return a.table }
